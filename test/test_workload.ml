(* Property and determinism tests for the open-loop workload engine:
   Zipf key popularity matching its exponent, Poisson/MMPP inter-arrival
   means converging to theory, RNG-split stream independence, and
   byte-identical same-seed runs at the trace level.

   Every statistical test draws from a fixed-seed generator, so the
   statistic is a deterministic function of the QCheck-generated
   parameters — tolerances guard model error, not run-to-run noise. *)

module Rng = Octo_sim.Rng
module Trace = Octo_sim.Trace
module Workload = Octo_experiments.Workload
module Zipf = Workload.Zipf
module Arrivals = Workload.Arrivals

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Zipf sampler *)

let prop_zipf_pmf_normalized =
  QCheck.Test.make ~name:"zipf pmf sums to 1" ~count:100
    QCheck.(pair (float_range 0.2 2.5) (int_range 1 128))
    (fun (s, n) ->
      let z = Zipf.create ~s ~n () in
      let total = ref 0.0 in
      for i = 0 to n - 1 do
        total := !total +. Zipf.pmf z i
      done;
      Float.abs (!total -. 1.0) < 1e-9 && Zipf.support z = n && Zipf.exponent z = s)

(* Chi-square-style goodness of fit: draw a fixed-size sample and compare
   rank frequencies against the analytic pmf. Only ranks with a healthy
   expected count enter the statistic (the classic >= 5 rule); the bound
   is loose relative to the chi-square quantile because the sample is
   deterministic — it guards against sampling from the wrong exponent,
   not against noise. A mismatched exponent (e.g. s vs s/2) blows the
   statistic up by orders of magnitude. *)
let prop_zipf_frequencies_match_exponent =
  QCheck.Test.make ~name:"zipf rank frequencies match exponent" ~count:20
    QCheck.(pair (float_range 0.5 2.0) (int_range 8 64))
    (fun (s, n) ->
      let z = Zipf.create ~s ~n () in
      let rng = Rng.create ~seed:42 in
      let m = 20_000 in
      let counts = Array.make n 0 in
      for _ = 1 to m do
        let r = Zipf.sample z rng in
        if r < 0 || r >= n then QCheck.Test.fail_report "sample out of support";
        counts.(r) <- counts.(r) + 1
      done;
      let chi2 = ref 0.0 and df = ref 0 in
      for i = 0 to n - 1 do
        let expected = float_of_int m *. Zipf.pmf z i in
        if expected >= 5.0 then begin
          let d = float_of_int counts.(i) -. expected in
          chi2 := !chi2 +. (d *. d /. expected);
          incr df
        end
      done;
      (* 99.99th chi-square percentile at df=63 is ~117; triple it. *)
      !chi2 < (3.0 *. float_of_int !df) +. 160.0)

let prop_zipf_head_heavier_than_tail =
  QCheck.Test.make ~name:"zipf head outweighs tail" ~count:50
    QCheck.(pair (float_range 0.5 2.0) (int_range 8 128))
    (fun (s, n) ->
      let z = Zipf.create ~s ~n () in
      let rng = Rng.create ~seed:7 in
      let head = ref 0 in
      let m = 4_000 in
      for _ = 1 to m do
        if Zipf.sample z rng < n / 2 then incr head
      done;
      (* Rank 0 alone outweighs rank n-1 by (n)^s; the lower half always
         carries well over half the mass. *)
      float_of_int !head > 0.55 *. float_of_int m)

(* ------------------------------------------------------------------ *)
(* Arrival processes *)

let arrivals_gaps process ~seed ~m =
  let t = Arrivals.create process (Rng.create ~seed) in
  let gaps = Array.make m 0.0 in
  let now = ref 0.0 in
  for i = 0 to m - 1 do
    let next = Arrivals.next t ~now:!now in
    if next <= !now then failwith "arrivals must be strictly increasing";
    gaps.(i) <- next -. !now;
    now := next
  done;
  gaps

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let prop_poisson_interarrival_mean =
  QCheck.Test.make ~name:"poisson inter-arrival mean is 1/rate" ~count:25
    QCheck.(float_range 5.0 200.0)
    (fun rate ->
      let gaps = arrivals_gaps (Arrivals.Poisson { rate }) ~seed:11 ~m:20_000 in
      let expected = 1.0 /. rate in
      Float.abs (mean gaps -. expected) < 0.05 *. expected)

let test_mmpp_interarrival_mean () =
  (* Burst preset parameters: 400 q/s for mean 5 s on, 10 q/s for mean
     15 s off. Long-run arrival rate = (400*5 + 10*15) / (5 + 15) =
     107.5 q/s, so the mean gap converges to 20/2150 s. The estimate
     averages over ~350 on/off cycles; 10% tolerance covers the
     cycle-level variance of this one fixed seed. *)
  let process =
    Arrivals.Mmpp { rate_on = 400.0; rate_off = 10.0; mean_on = 5.0; mean_off = 15.0 }
  in
  let gaps = arrivals_gaps process ~seed:13 ~m:800_000 in
  let expected = 20.0 /. 2150.0 in
  let got = mean gaps in
  Alcotest.(check bool)
    (Printf.sprintf "mmpp mean gap %g within 10%% of %g" got expected)
    true
    (Float.abs (got -. expected) < 0.10 *. expected)

let test_mmpp_rate_at_phases () =
  let process =
    Arrivals.Mmpp { rate_on = 400.0; rate_off = 10.0; mean_on = 5.0; mean_off = 15.0 }
  in
  let t = Arrivals.create process (Rng.create ~seed:3) in
  (* Walk a long stretch of arrivals; both phase rates must be observed. *)
  let seen_on = ref false and seen_off = ref false in
  let now = ref 0.0 in
  for _ = 1 to 50_000 do
    now := Arrivals.next t ~now:!now;
    let r = Arrivals.rate_at t ~now:!now in
    if r = 400.0 then seen_on := true
    else if r = 10.0 then seen_off := true
    else Alcotest.failf "unexpected instantaneous rate %g" r
  done;
  Alcotest.(check bool) "visited on phase" true !seen_on;
  Alcotest.(check bool) "visited off phase" true !seen_off

let test_diurnal_rate_modulates () =
  let base = 40.0 and amplitude = 0.8 and period = 600.0 in
  let t = Arrivals.create (Arrivals.Diurnal { base; amplitude; period }) (Rng.create ~seed:5) in
  (* Peak of the sinusoid at t = period/4, trough at 3*period/4. *)
  let peak = Arrivals.rate_at t ~now:(period /. 4.0) in
  let trough = Arrivals.rate_at t ~now:(3.0 *. period /. 4.0) in
  Alcotest.(check (float 1e-6)) "peak rate" (base *. (1.0 +. amplitude)) peak;
  Alcotest.(check (float 1e-6)) "trough rate" (base *. (1.0 -. amplitude)) trough;
  (* Thinning must still produce strictly increasing arrivals. *)
  let now = ref 0.0 in
  for _ = 1 to 10_000 do
    let next = Arrivals.next t ~now:!now in
    Alcotest.(check bool) "strictly increasing" true (next > !now);
    now := next
  done

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_generators_same_seed_identical () =
  let draws process seed =
    let t = Arrivals.create process (Rng.create ~seed) in
    let now = ref 0.0 in
    List.init 1_000 (fun _ ->
        now := Arrivals.next t ~now:!now;
        !now)
  in
  List.iter
    (fun regime ->
      let p = Workload.process_of regime in
      Alcotest.(check (list (float 0.0)))
        (Workload.regime_name regime ^ " arrivals bit-identical")
        (draws p 21) (draws p 21))
    Workload.all_regimes;
  let z = Zipf.create ~s:1.0 ~n:512 () in
  let ranks seed =
    let rng = Rng.create ~seed in
    List.init 1_000 (fun _ -> Zipf.sample z rng)
  in
  Alcotest.(check (list int)) "zipf ranks bit-identical" (ranks 33) (ranks 33)

let test_rng_split_streams_independent () =
  (* Drawing from one split stream must not perturb its sibling: stream b
     yields the same sequence whether or not stream a was consumed. *)
  let master1 = Rng.create ~seed:99 in
  let a1 = Rng.split master1 in
  let b1 = Rng.split master1 in
  for _ = 1 to 100 do
    ignore (Rng.unit_float a1)
  done;
  let b1_draws = List.init 100 (fun _ -> Rng.unit_float b1) in
  let master2 = Rng.create ~seed:99 in
  let _a2 = Rng.split master2 in
  let b2 = Rng.split master2 in
  let b2_draws = List.init 100 (fun _ -> Rng.unit_float b2) in
  Alcotest.(check (list (float 0.0))) "sibling stream unperturbed" b2_draws b1_draws

let trace_lines (r : Workload.result) = List.map Trace.to_json (Trace.events r.Workload.trace)

let test_run_same_seed_byte_identical () =
  let go () = Workload.run ~n:16 ~seed:5 ~queries:50 ~regime:Workload.Steady () in
  let r1 = go () and r2 = go () in
  Alcotest.(check bool) "issued something" true (r1.Workload.issued > 0);
  Alcotest.(check int) "issued equal" r1.Workload.issued r2.Workload.issued;
  Alcotest.(check int) "converged equal" r1.Workload.converged r2.Workload.converged;
  Alcotest.(check (list string)) "traces byte-identical" (trace_lines r1) (trace_lines r2)

let test_run_chaos_same_seed_byte_identical () =
  let go () = Workload.run ~n:16 ~seed:5 ~queries:50 ~chaos:true ~regime:Workload.Steady () in
  let r1 = go () and r2 = go () in
  Alcotest.(check (list string)) "chaos traces byte-identical" (trace_lines r1) (trace_lines r2)

let test_regime_names_round_trip () =
  List.iter
    (fun regime ->
      match Workload.regime_of_name (Workload.regime_name regime) with
      | Some r -> Alcotest.(check bool) "round trip" true (r = regime)
      | None -> Alcotest.fail "regime name did not round-trip")
    Workload.all_regimes;
  Alcotest.(check bool) "unknown name rejected" true
    (Workload.regime_of_name "lunar" = None)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        qsuite
          [
            prop_zipf_pmf_normalized;
            prop_zipf_frequencies_match_exponent;
            prop_zipf_head_heavier_than_tail;
          ] );
      ( "arrivals",
        [
          Alcotest.test_case "mmpp mean gap" `Slow test_mmpp_interarrival_mean;
          Alcotest.test_case "mmpp phase rates" `Quick test_mmpp_rate_at_phases;
          Alcotest.test_case "diurnal modulation" `Quick test_diurnal_rate_modulates;
        ]
        @ qsuite [ prop_poisson_interarrival_mean ] );
      ( "determinism",
        [
          Alcotest.test_case "generators same seed" `Quick test_generators_same_seed_identical;
          Alcotest.test_case "rng split independence" `Quick test_rng_split_streams_independent;
          Alcotest.test_case "run byte-identical" `Slow test_run_same_seed_byte_identical;
          Alcotest.test_case "chaos run byte-identical" `Slow
            test_run_chaos_same_seed_byte_identical;
          Alcotest.test_case "regime names" `Quick test_regime_names_round_trip;
        ] );
    ]
