(* Tests for the fault-injection engine: group resolution, every fault
   kind's observable effect, counter bookkeeping, same-seed determinism,
   the envelope-pool poisoning detector, and RPC behavior when the
   destination dies (fast-fail of queued calls, cancellation). *)

module Engine = Octo_sim.Engine
module Rng = Octo_sim.Rng
module Latency = Octo_sim.Latency
module Net = Octo_sim.Net
module Fault = Octo_sim.Fault
module Rpc = Octo_sim.Rpc
module Trace = Octo_sim.Trace

(* A small rig: engine, latency space and a net whose slots record every
   delivered payload as [(time, src, payload, size)]. *)
type rig = {
  engine : Engine.t;
  lat : Latency.t;
  net : string Net.t;
  delivered : (float * int * string * int) list ref array;
}

let make_rig ?(seed = 42) ~n () =
  let engine = Engine.create ~seed () in
  let lat = Latency.create (Rng.create ~seed:(seed + 1)) ~n in
  let net = Net.create engine lat in
  let delivered = Array.init n (fun _ -> ref []) in
  for a = 0 to n - 1 do
    Net.register net a (fun env ->
        delivered.(a) :=
          (Engine.now engine, env.Net.src, env.Net.payload, env.Net.size)
          :: !(delivered.(a)))
  done;
  { engine; lat; net; delivered }

let count rig a = List.length !(rig.delivered.(a))

(* ------------------------------------------------------------------ *)
(* Group resolution *)

let test_members () =
  let rng = Rng.create ~seed:5 in
  let lat = Latency.create rng ~n:8 in
  Alcotest.(check (list int)) "addrs" [ 1; 3; 5 ] (Fault.members lat (Fault.Addrs [ 5; 1; 3 ]));
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Fault.members lat (Fault.Range { lo = 2; hi = 4 }));
  Alcotest.(check (list int)) "empty range" [] (Fault.members lat (Fault.Range { lo = 4; hi = 2 }));
  let region = Fault.members lat (Fault.Region { epicenter = 0; radius = 10.0 }) in
  Alcotest.(check bool) "epicenter in own region" true (List.mem 0 region);
  Alcotest.(check (list int)) "huge radius = everyone" [ 0; 1; 2; 3; 4; 5; 6; 7 ] region;
  Alcotest.(check (list int)) "zero radius = epicenter only" [ 0 ]
    (Fault.members lat (Fault.Region { epicenter = 0; radius = 0.0 }))

(* ------------------------------------------------------------------ *)
(* Fault kinds *)

let test_partition_drops_and_heals () =
  let rig = make_rig ~n:6 () in
  let plan =
    [ Fault.Partition
        { groups = [ Fault.Range { lo = 0; hi = 2 } ]; from_ = 1.0; heal_at = 5.0 };
    ]
  in
  let f = Fault.install rig.engine rig.lat rig.net plan in
  (* Before the window: cross-group traffic flows. *)
  Net.send rig.net ~src:0 ~dst:4 ~size:36 "pre";
  Engine.run rig.engine ~until:1.0;
  Alcotest.(check int) "pre-window delivered" 1 (count rig 4);
  (* During: across the cut both ways drops, within a side flows. *)
  Net.send rig.net ~src:0 ~dst:4 ~size:36 "cross";
  Net.send rig.net ~src:4 ~dst:0 ~size:36 "cross-back";
  Net.send rig.net ~src:0 ~dst:1 ~size:36 "inside";
  Net.send rig.net ~src:4 ~dst:5 ~size:36 "outside";
  Engine.run rig.engine ~until:5.0;
  Alcotest.(check int) "cross dropped" 1 (count rig 4);
  Alcotest.(check int) "cross-back dropped" 0 (count rig 0);
  Alcotest.(check int) "same-group delivered" 1 (count rig 1);
  Alcotest.(check int) "remainder-group delivered" 1 (count rig 5);
  Alcotest.(check int) "two drops counted" 2 (Fault.drops f);
  (* After heal: flows again. *)
  Net.send rig.net ~src:0 ~dst:4 ~size:36 "post";
  Engine.run rig.engine ~until:10.0;
  Alcotest.(check int) "post-heal delivered" 2 (count rig 4);
  Alcotest.(check int) "no further drops" 2 (Fault.drops f)

let test_link_fail_asymmetric () =
  let rig = make_rig ~n:4 () in
  let plan =
    [ Fault.Link_fail
        {
          src = Fault.Addrs [ 0 ];
          dst = Fault.Addrs [ 1 ];
          from_ = 1.0;
          until = 5.0;
          symmetric = false;
        };
    ]
  in
  let f = Fault.install rig.engine rig.lat rig.net plan in
  Engine.run rig.engine ~until:1.0;
  Net.send rig.net ~src:0 ~dst:1 ~size:36 "forward";
  Net.send rig.net ~src:1 ~dst:0 ~size:36 "reverse";
  Engine.run rig.engine ~until:5.0;
  Alcotest.(check int) "forward dropped" 0 (count rig 1);
  Alcotest.(check int) "reverse delivered" 1 (count rig 0);
  Alcotest.(check int) "one drop" 1 (Fault.drops f)

let test_corruption_rewrites_payload_and_size () =
  let rig = make_rig ~n:2 () in
  let corrupt _rng payload = ("garbled:" ^ payload, 99) in
  let f =
    Fault.install rig.engine rig.lat rig.net ~corrupt
      [ Fault.Corrupt { prob = 1.0; from_ = 1.0; until = 10.0 } ]
  in
  Engine.run rig.engine ~until:1.0;
  Net.send rig.net ~src:0 ~dst:1 ~size:36 "hello";
  Engine.run rig.engine ~until:5.0;
  (match !(rig.delivered.(1)) with
  | [ (_, src, payload, size) ] ->
    Alcotest.(check int) "src preserved" 0 src;
    Alcotest.(check string) "payload garbled" "garbled:hello" payload;
    Alcotest.(check int) "received at perturbed size" 99 size
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check int) "counted" 1 (Fault.corruptions f);
  (* Transmit accounting keeps the original wire size. *)
  Alcotest.(check int) "tx at original size" 36 (Net.tx_bytes rig.net 0);
  Alcotest.(check int) "rx at corrupted size" 99 (Net.rx_bytes rig.net 1)

let test_duplicate_delivers_twice () =
  let rig = make_rig ~n:2 () in
  let f =
    Fault.install rig.engine rig.lat rig.net
      [ Fault.Duplicate { prob = 1.0; spread = 0.5; from_ = 1.0; until = 10.0 } ]
  in
  Engine.run rig.engine ~until:1.0;
  Net.send rig.net ~src:0 ~dst:1 ~size:36 "once";
  Engine.run rig.engine ~until:5.0;
  Alcotest.(check int) "delivered twice" 2 (count rig 1);
  Alcotest.(check int) "one duplication" 1 (Fault.duplicates f);
  Alcotest.(check int) "tx counted once" 36 (Net.tx_bytes rig.net 0);
  Alcotest.(check int) "rx counted per copy" 72 (Net.rx_bytes rig.net 1)

let test_reorder_holds_back_bounded () =
  (* With a deterministic two-message probe: the reordered copy arrives
     strictly later than an un-faulted reference send of the same
     latency, but no more than [max_extra] later. *)
  let seed = 9 in
  let baseline =
    let rig = make_rig ~seed ~n:2 () in
    Engine.run rig.engine ~until:1.0;
    Net.send rig.net ~src:0 ~dst:1 ~size:36 "ref";
    Engine.run rig.engine ~until:10.0;
    match !(rig.delivered.(1)) with
    | [ (t, _, _, _) ] -> t
    | _ -> Alcotest.fail "baseline lost"
  in
  let rig = make_rig ~seed ~n:2 () in
  let f =
    Fault.install rig.engine rig.lat rig.net
      [ Fault.Reorder { prob = 1.0; max_extra = 2.0; from_ = 1.0; until = 10.0 } ]
  in
  Engine.run rig.engine ~until:1.0;
  Net.send rig.net ~src:0 ~dst:1 ~size:36 "held";
  Engine.run rig.engine ~until:20.0;
  (match !(rig.delivered.(1)) with
  | [ (t, _, _, _) ] ->
    Alcotest.(check bool) "arrives later than baseline" true (t > baseline);
    Alcotest.(check bool) "within max_extra bound" true (t <= baseline +. 2.0)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check int) "one reorder" 1 (Fault.reorders f)

let test_crash_burst_callbacks () =
  let rig = make_rig ~n:8 () in
  let crashed = ref [] and recovered = ref [] in
  let f =
    Fault.install rig.engine rig.lat rig.net
      ~on_crash:(fun a -> crashed := a :: !crashed)
      ~on_recover:(fun a -> recovered := a :: !recovered)
      [ Fault.Crash_burst
          { at = 2.0; victims = Fault.Range { lo = 0; hi = 7 }; count = 3; recover_after = 4.0 };
      ]
  in
  Engine.run rig.engine ~until:3.0;
  Alcotest.(check int) "three crashed" 3 (List.length !crashed);
  Alcotest.(check int) "distinct victims" 3 (List.length (List.sort_uniq compare !crashed));
  Alcotest.(check int) "none recovered yet" 0 (List.length !recovered);
  Engine.run rig.engine ~until:10.0;
  Alcotest.(check (list int)) "same set recovers" (List.sort compare !crashed)
    (List.sort compare !recovered);
  Alcotest.(check int) "crash counter" 3 (Fault.crashes f)

let test_regional_outage_blocks_both_directions () =
  let rig = make_rig ~n:6 () in
  (* Radius 0: exactly the epicenter is out — it can neither send nor
     receive, while bystander traffic is untouched. *)
  let f =
    Fault.install rig.engine rig.lat rig.net
      [ Fault.Regional_outage { epicenter = 2; radius = 0.0; from_ = 1.0; until = 5.0 } ]
  in
  Engine.run rig.engine ~until:1.0;
  Net.send rig.net ~src:2 ~dst:4 ~size:36 "from-out";
  Net.send rig.net ~src:4 ~dst:2 ~size:36 "to-out";
  Net.send rig.net ~src:0 ~dst:4 ~size:36 "bystander";
  Engine.run rig.engine ~until:5.0;
  Alcotest.(check int) "outage node receives nothing" 0 (count rig 2);
  Alcotest.(check (list string)) "only bystander traffic arrives" [ "bystander" ]
    (List.map (fun (_, _, p, _) -> p) !(rig.delivered.(4)));
  Alcotest.(check int) "both directions dropped" 2 (Fault.drops f);
  (* After the window the epicenter is reachable again. *)
  Net.send rig.net ~src:4 ~dst:2 ~size:36 "post";
  Engine.run rig.engine ~until:10.0;
  Alcotest.(check int) "reachable after window" 1 (count rig 2)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let mixed_plan =
  [ Fault.Partition { groups = [ Fault.Range { lo = 0; hi = 3 } ]; from_ = 1.0; heal_at = 6.0 };
    Fault.Corrupt { prob = 0.3; from_ = 0.0; until = 8.0 };
    Fault.Duplicate { prob = 0.3; spread = 0.5; from_ = 0.0; until = 8.0 };
    Fault.Reorder { prob = 0.5; max_extra = 1.0; from_ = 0.0; until = 8.0 };
  ]

let faulted_run seed =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let rig = make_rig ~seed ~n:8 () in
      let corrupt _rng p = ("x" ^ p, 40) in
      let f = Fault.install rig.engine rig.lat rig.net ~corrupt mixed_plan in
      for i = 0 to 99 do
        Net.send rig.net ~src:(i mod 8)
          ~dst:((i * 3 + 1) mod 8)
          ~size:(36 + (i mod 5))
          (string_of_int i)
      done;
      Engine.run rig.engine ~until:20.0;
      ( List.map Trace.to_json (Trace.events t),
        (Fault.drops f, Fault.corruptions f, Fault.duplicates f, Fault.reorders f) ))

let test_same_seed_identical () =
  let trace_a, counters_a = faulted_run 17 in
  let trace_b, counters_b = faulted_run 17 in
  Alcotest.(check int) "same event count" (List.length trace_a) (List.length trace_b);
  List.iter2 (fun a b -> Alcotest.(check string) "same event" a b) trace_a trace_b;
  let a1, a2, a3, a4 = counters_a and b1, b2, b3, b4 = counters_b in
  Alcotest.(check (list int)) "same counters" [ a1; a2; a3; a4 ] [ b1; b2; b3; b4 ]

let test_different_seed_differs () =
  let trace_a, _ = faulted_run 17 in
  let trace_b, _ = faulted_run 18 in
  Alcotest.(check bool) "different seeds diverge" true (trace_a <> trace_b)

(* ------------------------------------------------------------------ *)
(* Envelope-pool poisoning *)

let test_poison_detects_retained_envelope () =
  let engine = Engine.create ~seed:1 () in
  let lat = Latency.create (Rng.create ~seed:2) ~n:2 in
  let net = Net.create engine lat in
  Net.set_debug_poison net true;
  let leaked = ref None in
  Net.register net 1 (fun env ->
      (* The bug under test: retaining the pooled envelope. While the
         handler runs the envelope is live and unpoisoned. *)
      Alcotest.(check bool) "live during handling" false (Net.poisoned env);
      leaked := Some env);
  Net.send net ~src:0 ~dst:1 ~size:36 "msg";
  Engine.run engine ~until:5.0;
  match !leaked with
  | None -> Alcotest.fail "handler never ran"
  | Some env ->
    Alcotest.(check bool) "poisoned after release" true (Net.poisoned env);
    (* Poisoned envelopes are withheld from the pool: a second send must
       not resurrect the leaked one. *)
    let second = ref None in
    Net.register net 1 (fun e -> second := Some e);
    Net.send net ~src:0 ~dst:1 ~size:36 "msg2";
    Engine.run engine ~until:10.0;
    (match !second with
    | Some e2 -> Alcotest.(check bool) "fresh envelope, not the leak" true (e2 != env)
    | None -> Alcotest.fail "second delivery lost");
    Alcotest.(check bool) "leak stays poisoned" true (Net.poisoned env)

let test_no_poison_by_default () =
  let engine = Engine.create ~seed:1 () in
  let lat = Latency.create (Rng.create ~seed:2) ~n:2 in
  let net = Net.create engine lat in
  let got = ref None in
  Net.register net 1 (fun env -> got := Some env);
  Net.send net ~src:0 ~dst:1 ~size:36 "msg";
  Engine.run engine ~until:5.0;
  match !got with
  | Some env -> Alcotest.(check bool) "not poisoned" false (Net.poisoned env)
  | None -> Alcotest.fail "delivery lost"

(* ------------------------------------------------------------------ *)
(* RPC under node death *)

let test_fail_queued_fast_fails_exactly_the_queue () =
  let e = Engine.create ~seed:1 () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) ~in_flight_cap:1 () in
  let sent = ref [] and gave_up = ref [] and resolved = ref [] in
  let call tag =
    ignore
      (Rpc.call rpc ~src:0 ~dst:1
         ~policy:(Rpc.policy ~timeout:5.0 ())
         ~send:(fun _rid -> sent := tag :: !sent)
         ~on_give_up:(fun () -> gave_up := tag :: !gave_up)
         (fun (_ : string) -> resolved := tag :: !resolved))
  in
  call "a";
  call "b";
  call "c";
  Alcotest.(check (list string)) "only the first flew" [ "a" ] !sent;
  Alcotest.(check int) "two queued" 2 (Rpc.queued rpc ~dst:1);
  (* Destination dies: queued calls fail immediately and in order; the
     flying call is left to its own timeout. *)
  Rpc.fail_queued rpc ~dst:1;
  Alcotest.(check (list string)) "queue fast-failed FIFO" [ "c"; "b" ] !gave_up;
  Alcotest.(check int) "queue empty" 0 (Rpc.queued rpc ~dst:1);
  Alcotest.(check int) "flying call still out" 1 (Rpc.in_flight rpc ~dst:1);
  Alcotest.(check (list string)) "nothing resolved" [] !resolved;
  (* Idempotent on an empty queue. *)
  Rpc.fail_queued rpc ~dst:1;
  Alcotest.(check (list string)) "no double give-up" [ "c"; "b" ] !gave_up;
  Engine.run e ~until:10.0;
  Alcotest.(check (list string)) "flyer timed out once, afterwards" [ "a"; "c"; "b" ] !gave_up

let test_cancel_fires_neither_callback () =
  let e = Engine.create ~seed:1 () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  let outcomes = ref 0 in
  let tok =
    Rpc.call rpc ~src:0 ~dst:1
      ~policy:(Rpc.policy ~timeout:1.0 ~attempts:3 ())
      ~send:(fun _ -> ())
      ~on_give_up:(fun () -> incr outcomes)
      (fun (_ : string) -> incr outcomes)
  in
  let rid = Rpc.rid tok in
  Rpc.cancel rpc tok;
  Rpc.cancel rpc tok;
  (* A late response after cancellation is rejected, and the timeout
     machinery never fires the give-up. *)
  Alcotest.(check bool) "late response rejected" false (Rpc.resolve rpc rid "late");
  Engine.run e ~until:30.0;
  Alcotest.(check int) "neither callback ever fired" 0 !outcomes;
  Alcotest.(check int) "no outstanding state" 0 (Rpc.outstanding rpc)

let () =
  Alcotest.run "fault"
    [ ( "groups",
        [ Alcotest.test_case "members" `Quick test_members ] );
      ( "kinds",
        [ Alcotest.test_case "partition drops and heals" `Quick test_partition_drops_and_heals;
          Alcotest.test_case "asymmetric link failure" `Quick test_link_fail_asymmetric;
          Alcotest.test_case "corruption rewrites payload/size" `Quick
            test_corruption_rewrites_payload_and_size;
          Alcotest.test_case "duplication delivers twice" `Quick test_duplicate_delivers_twice;
          Alcotest.test_case "reorder bounded" `Quick test_reorder_holds_back_bounded;
          Alcotest.test_case "crash burst callbacks" `Quick test_crash_burst_callbacks;
          Alcotest.test_case "regional outage blocks both directions" `Quick
            test_regional_outage_blocks_both_directions;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
          Alcotest.test_case "different seed differs" `Quick test_different_seed_differs;
        ] );
      ( "envelope-pool",
        [ Alcotest.test_case "poison detects retention" `Quick
            test_poison_detects_retained_envelope;
          Alcotest.test_case "no poison by default" `Quick test_no_poison_by_default;
        ] );
      ( "rpc-under-death",
        [ Alcotest.test_case "fail_queued fast-fails queue" `Quick
            test_fail_queued_fast_fails_exactly_the_queue;
          Alcotest.test_case "cancel fires neither callback" `Quick
            test_cancel_fires_neither_callback;
        ] );
    ]
