(* Tests for the bench --compare / --fail-above policy: JSON round-trip
   through the octopus-bench/v1 and /v2 schemas, delta pairing, memory
   deltas, and the exit-code contract CI gates on. *)

open Octo_experiments

let full ns ~major ~peak ~bpn =
  {
    Bench_compare.ns_per_op = ns;
    minor_words_per_op = 0.0;
    major_words_per_op = major;
    peak_heap_mb = peak;
    bytes_per_node = bpn;
  }

let row ns = full ns ~major:Float.nan ~peak:Float.nan ~bpn:Float.nan

let sample_json =
  {|{
  "schema": "octopus-bench/v1",
  "kernels": {
    "a/fast": { "ns_per_op": 100.0, "minor_words_per_op": 12.0 },
    "b/slow": { "ns_per_op": 2000.5, "minor_words_per_op": null },
    "c/new": { "ns_per_op": 7.25, "minor_words_per_op": 1.0 }
  }
}|}

let test_parse () =
  let rows = Bench_compare.parse ~path:"sample" sample_json in
  Alcotest.(check int) "three kernels" 3 (List.length rows);
  let a = List.assoc "a/fast" rows in
  Alcotest.(check (float 1e-9)) "ns" 100.0 a.Bench_compare.ns_per_op;
  Alcotest.(check (float 1e-9)) "words" 12.0 a.Bench_compare.minor_words_per_op;
  let b = List.assoc "b/slow" rows in
  Alcotest.(check bool) "null -> nan" true (Float.is_nan b.Bench_compare.minor_words_per_op)

let test_parse_malformed () =
  Alcotest.check_raises "truncated" (Failure "sample: malformed bench json at byte 12: expected :")
    (fun () -> ignore (Bench_compare.parse ~path:"sample" {|{ "kernels" "oops" }|}))

let test_deltas_pairing () =
  let baseline = [ ("k1", row 100.0); ("k2", row 50.0); ("gone", row 10.0) ] in
  let current = [ ("k1", row 110.0); ("k2", row 40.0); ("new", row 5.0) ] in
  let ds = Bench_compare.deltas ~baseline ~current in
  Alcotest.(check int) "only paired kernels" 2 (List.length ds);
  let d1 = List.find (fun d -> d.Bench_compare.kernel = "k1") ds in
  Alcotest.(check (float 1e-9)) "k1 +10%" 10.0 d1.Bench_compare.pct;
  let d2 = List.find (fun d -> d.Bench_compare.kernel = "k2") ds in
  Alcotest.(check (float 1e-9)) "k2 -20%" (-20.0) d2.Bench_compare.pct

let test_deltas_skip_nan () =
  let baseline = [ ("k", row Float.nan); ("z", row 0.0) ] in
  let current = [ ("k", row 10.0); ("z", row 10.0) ] in
  Alcotest.(check int) "nan and zero baselines skipped" 0
    (List.length (Bench_compare.deltas ~baseline ~current))

let test_worst () =
  let baseline = [ ("k1", row 100.0); ("k2", row 100.0) ] in
  let current = [ ("k1", row 130.0); ("k2", row 90.0) ] in
  match Bench_compare.worst (Bench_compare.deltas ~baseline ~current) with
  | Some d ->
    Alcotest.(check string) "worst kernel" "k1" d.Bench_compare.kernel;
    Alcotest.(check (float 1e-9)) "worst pct" 30.0 d.Bench_compare.pct
  | None -> Alcotest.fail "expected a worst delta"

(* The exit-code contract: 0 without a threshold or within it, 3 past it.
   This is exactly what `bench --compare --fail-above` returns to CI. *)
let test_exit_code () =
  let baseline = [ ("k1", row 100.0); ("k2", row 100.0) ] in
  let current = [ ("k1", row 104.9); ("k2", row 95.0) ] in
  let ds = Bench_compare.deltas ~baseline ~current in
  Alcotest.(check int) "no threshold -> 0" 0 (Bench_compare.exit_code ~fail_above:None ds);
  Alcotest.(check int) "within 5%% -> 0" 0 (Bench_compare.exit_code ~fail_above:(Some 5.0) ds);
  Alcotest.(check int) "past 1%% -> 3" 3 (Bench_compare.exit_code ~fail_above:(Some 1.0) ds);
  let regressed = Bench_compare.deltas ~baseline ~current:[ ("k1", row 150.0) ] in
  Alcotest.(check int) "50%% past 10%% -> 3" 3
    (Bench_compare.exit_code ~fail_above:(Some 10.0) regressed);
  (* An improvement is never a regression, whatever the threshold. *)
  let improved = Bench_compare.deltas ~baseline ~current:[ ("k1", row 10.0) ] in
  Alcotest.(check int) "faster -> 0" 0 (Bench_compare.exit_code ~fail_above:(Some 0.0) improved)

(* Kernels present in only one file: reported by [unpaired], never gated.
   A baseline recorded before a kernel existed (BENCH_PR5.json vs a run
   that now has load/* kernels) must not fail --fail-above. *)
let test_unpaired_reported () =
  let baseline = [ ("k1", row 100.0); ("gone", row 10.0); ("also-gone", row 1.0) ] in
  let current = [ ("k1", row 100.0); ("brand-new", row 5.0) ] in
  let only_base, only_cur = Bench_compare.unpaired ~baseline ~current in
  Alcotest.(check (list string)) "baseline-only, input order" [ "gone"; "also-gone" ] only_base;
  Alcotest.(check (list string)) "current-only" [ "brand-new" ] only_cur

let test_unpaired_never_gates () =
  (* Wildly slow numbers on one-sided kernels carry no regression signal:
     the gate must stay green even at a 0% threshold. *)
  let baseline = [ ("k1", row 100.0); ("gone", row 1.0) ] in
  let current = [ ("k1", row 100.0); ("brand-new", row 1_000_000.0) ] in
  let ds = Bench_compare.deltas ~baseline ~current in
  Alcotest.(check int) "one paired delta" 1 (List.length ds);
  Alcotest.(check int) "unpaired kernels don't trip the gate" 0
    (Bench_compare.exit_code ~fail_above:(Some 0.0) ds)

let test_unpaired_empty_on_match () =
  let rows = [ ("k1", row 100.0); ("k2", row 50.0) ] in
  let only_base, only_cur = Bench_compare.unpaired ~baseline:rows ~current:rows in
  Alcotest.(check (list string)) "no baseline-only" [] only_base;
  Alcotest.(check (list string)) "no current-only" [] only_cur

(* v2 schema round-trip: memory metrics parse when present and stay NaN
   when the file predates them. *)
let sample_json_v2 =
  {|{
  "schema": "octopus-bench/v2",
  "kernels": {
    "a/fast": { "ns_per_op": 100.0, "minor_words_per_op": 12.0, "major_words_per_op": 3.5 },
    "scale/world-10k": { "ns_per_op": null, "minor_words_per_op": null, "major_words_per_op": 900.0, "peak_heap_mb": 64.0, "bytes_per_node": 512.0 }
  }
}|}

let test_parse_v2 () =
  let rows = Bench_compare.parse ~path:"v2" sample_json_v2 in
  let a = List.assoc "a/fast" rows in
  Alcotest.(check (float 1e-9)) "major" 3.5 a.Bench_compare.major_words_per_op;
  Alcotest.(check bool) "no peak on micro kernel" true (Float.is_nan a.Bench_compare.peak_heap_mb);
  let s = List.assoc "scale/world-10k" rows in
  Alcotest.(check (float 1e-9)) "bytes/node" 512.0 s.Bench_compare.bytes_per_node;
  Alcotest.(check (float 1e-9)) "peak MB" 64.0 s.Bench_compare.peak_heap_mb;
  (* v1 files parse with the memory metrics absent, not failing. *)
  let v1 = Bench_compare.parse ~path:"v1" sample_json in
  let b = List.assoc "b/slow" v1 in
  Alcotest.(check bool) "v1 major is nan" true (Float.is_nan b.Bench_compare.major_words_per_op)

let test_mem_deltas () =
  let baseline =
    [ ("scale", full Float.nan ~major:1000.0 ~peak:50.0 ~bpn:500.0); ("k", row 100.0) ]
  in
  let current =
    [ ("scale", full Float.nan ~major:1100.0 ~peak:50.0 ~bpn:400.0); ("k", row 100.0) ]
  in
  let mds = Bench_compare.mem_deltas ~baseline ~current in
  (* k carries no memory metrics -> 0 deltas; scale pairs all three. *)
  Alcotest.(check int) "three memory deltas" 3 (List.length mds);
  let major = List.find (fun d -> d.Bench_compare.m_metric = "major_words_per_op") mds in
  Alcotest.(check (float 1e-9)) "major +10%" 10.0 major.Bench_compare.m_pct;
  let bpn = List.find (fun d -> d.Bench_compare.m_metric = "bytes_per_node") mds in
  Alcotest.(check (float 1e-9)) "bytes/node -20%" (-20.0) bpn.Bench_compare.m_pct;
  Alcotest.(check int) "only major regresses past 5%" 1
    (List.length (Bench_compare.mem_regressions ~fail_above:5.0 mds));
  (* A v1 baseline (all-NaN memory) produces no memory deltas at all. *)
  Alcotest.(check int) "v1 baseline -> no mem deltas" 0
    (List.length (Bench_compare.mem_deltas ~baseline:[ ("scale", row 1.0) ] ~current))

let test_threshold_boundary () =
  let ds = Bench_compare.deltas ~baseline:[ ("k", row 100.0) ] ~current:[ ("k", row 110.0) ] in
  (* strictly-above semantics: exactly at the threshold passes *)
  Alcotest.(check int) "at threshold -> 0" 0 (Bench_compare.exit_code ~fail_above:(Some 10.0) ds);
  Alcotest.(check int) "just below threshold -> 3" 3
    (Bench_compare.exit_code ~fail_above:(Some 9.999) ds)

let () =
  Alcotest.run "bench_compare"
    [
      ( "parse",
        [
          Alcotest.test_case "schema round-trip" `Quick test_parse;
          Alcotest.test_case "v2 schema round-trip" `Quick test_parse_v2;
          Alcotest.test_case "malformed input" `Quick test_parse_malformed;
        ] );
      ( "gate",
        [
          Alcotest.test_case "delta pairing" `Quick test_deltas_pairing;
          Alcotest.test_case "nan/zero skipped" `Quick test_deltas_skip_nan;
          Alcotest.test_case "worst delta" `Quick test_worst;
          Alcotest.test_case "memory deltas" `Quick test_mem_deltas;
          Alcotest.test_case "exit codes" `Quick test_exit_code;
          Alcotest.test_case "threshold boundary" `Quick test_threshold_boundary;
          Alcotest.test_case "unpaired reported" `Quick test_unpaired_reported;
          Alcotest.test_case "unpaired never gates" `Quick test_unpaired_never_gates;
          Alcotest.test_case "unpaired empty on match" `Quick test_unpaired_empty_on_match;
        ] );
    ]
