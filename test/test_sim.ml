(* Tests for the simulation substrate: RNG, heap, engine, latency model,
   metrics, network layer, churn. *)

open Octo_sim

let float_eps = 1e-9
let check_float msg expected actual = Alcotest.(check (float float_eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  (* Drawing from b must not change a's continuation. *)
  let a2 = Rng.copy a in
  for _ = 1 to 50 do
    ignore (Rng.bits64 b)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "a unaffected by b" (Rng.bits64 a2) (Rng.bits64 a)
  done

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create ~seed:12 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 3 7 in
    Alcotest.(check bool) "in [3,7]" true (v >= 3 && v <= 7);
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun x -> x) seen)

let test_rng_unit_float () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:14 in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:3.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~ 3.0" true (Float.abs (mean -. 3.0) < 0.1)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:15 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng ~mu:2.0 ~sigma:0.5 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 2.0" true (Float.abs (mean -. 2.0) < 0.02);
  Alcotest.(check bool) "sigma ~ 0.5" true (Float.abs (sqrt var -. 0.5) < 0.02)

let test_rng_coin () =
  let rng = Rng.create ~seed:16 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.coin rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p ~ 0.3" true (Float.abs (p -. 0.3) < 0.01)

let test_rng_sample_distinct () =
  let rng = Rng.create ~seed:17 in
  let arr = Array.init 100 (fun i -> i) in
  for _ = 1 to 100 do
    let s = Rng.sample rng ~k:10 arr in
    Alcotest.(check int) "sample size" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 1 to 9 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
    done
  done

let test_rng_sample_small_pool () =
  let rng = Rng.create ~seed:18 in
  let s = Rng.sample rng ~k:10 [| 1; 2; 3 |] in
  Alcotest.(check int) "clamped" 3 (Array.length s)

(* [Rng.bytes] must expand each 64-bit draw least-significant byte first —
   the layout the key/nonce loops always used — so ciphertexts and traces
   stay stable across the refactor that centralized them. *)
let test_rng_bytes_layout () =
  List.iter
    (fun n ->
      let a = Rng.create ~seed:19 and b = Rng.create ~seed:19 in
      let got = Rng.bytes a n in
      Alcotest.(check int) "length" n (Bytes.length got);
      let expected = Bytes.create n in
      let i = ref 0 in
      while !i < n do
        let word = Rng.bits64 b in
        let chunk = min 8 (n - !i) in
        for j = 0 to chunk - 1 do
          Bytes.set expected (!i + j)
            (Char.chr (Int64.to_int (Int64.shift_right_logical word (8 * j)) land 0xFF))
        done;
        i := !i + chunk
      done;
      Alcotest.(check bytes) "LSB-first expansion" expected got;
      (* Both generators consumed the same number of draws. *)
      Alcotest.(check int64) "stream position" (Rng.bits64 b) (Rng.bits64 a))
    [ 0; 1; 7; 8; 9; 16; 31; 32 ]

let test_rng_bytes_uniformish () =
  let rng = Rng.create ~seed:20 in
  let counts = Array.make 256 0 in
  let sample = Rng.bytes rng 65_536 in
  Bytes.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) sample;
  Array.iteri
    (fun v c ->
      if c = 0 then Alcotest.failf "byte value %d never appeared in 64 KiB" v)
    counts

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_permutation_valid =
  QCheck.Test.make ~name:"permutation is a bijection" ~count:100
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let p = Rng.permutation rng n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      Array.to_list sorted = List.init n (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check (option (pair (float float_eps) string))) "peek" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float float_eps) string))) "pop a" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float float_eps) string))) "pop b" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float float_eps) string))) "pop c" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:5.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "FIFO among equal priorities" [ 1; 2; 3; 4 ] order

let test_heap_size_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~priority:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 10 (Heap.size h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.size h);
  Alcotest.(check (option (pair (float float_eps) int))) "pop empty" None (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun l ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.stable_sort Float.compare l)

let heap_drain h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some (p, v) -> go ((p, v) :: acc)
  in
  go []

(* Pop priorities never decrease, under a coarse priority range that forces
   many ties interleaved with pops. *)
let prop_heap_pop_nondecreasing =
  QCheck.Test.make ~name:"heap pop priorities are nondecreasing" ~count:200
    QCheck.(list (int_bound 8))
    (fun l ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:(float_of_int p) ()) l;
      let pops = heap_drain h in
      let rec nondecreasing = function
        | (a, ()) :: ((b, ()) :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing pops)

(* FIFO among ties even when equal priorities arrive far apart: tag each
   push with its global insertion index and require that, within every
   priority class, indices come back in increasing order. *)
let prop_heap_ties_fifo =
  QCheck.Test.make ~name:"heap ties pop FIFO by insertion order" ~count:200
    QCheck.(list (int_bound 4))
    (fun l ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:(float_of_int p) i) l;
      let pops = heap_drain h in
      let last = Hashtbl.create 8 in
      List.for_all
        (fun (p, i) ->
          let ok = match Hashtbl.find_opt last p with None -> true | Some j -> j < i in
          Hashtbl.replace last p i;
          ok)
        pops)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  Engine.run e ~until:10.0;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at until" 10.0 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e ~until:5.0;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:0.5 (fun () -> times := Engine.now e :: !times))));
  Engine.run e ~until:10.0;
  Alcotest.(check (list (float float_eps))) "nested times" [ 1.0; 1.5 ] (List.rev !times)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.every e ~period:1.0 (fun () ->
         incr count;
         !count < 5));
  Engine.run e ~until:100.0;
  Alcotest.(check int) "stops when false" 5 !count

let test_engine_every_cancel () =
  let e = Engine.create () in
  let count = ref 0 in
  let h =
    Engine.every e ~period:1.0 (fun () ->
        incr count;
        true)
  in
  ignore (Engine.schedule e ~delay:3.5 (fun () -> Engine.cancel h));
  Engine.run e ~until:100.0;
  Alcotest.(check int) "cancelled after 3 firings" 3 !count

let test_engine_run_until_boundary () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5.1 (fun () -> incr fired));
  Engine.run e ~until:5.0;
  Alcotest.(check int) "inclusive boundary" 1 !fired;
  Engine.run e ~until:6.0;
  Alcotest.(check int) "rest delivered" 2 !fired

let test_engine_past_delay_clamped () =
  let e = Engine.create () in
  Engine.run e ~until:10.0;
  let at = ref 0.0 in
  ignore (Engine.schedule e ~delay:(-5.0) (fun () -> at := Engine.now e));
  Engine.run_until_idle e ();
  check_float "clamped to now" 10.0 !at

let test_engine_run_until_idle_budget () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.every e ~period:1.0 (fun () ->
         incr count;
         true));
  Engine.run_until_idle e ~max_events:10 ();
  Alcotest.(check int) "bounded" 10 !count

(* ------------------------------------------------------------------ *)
(* Latency *)

let make_latency ?(n = 120) () =
  let rng = Rng.create ~seed:99 in
  Latency.create rng ~n

let test_latency_self_zero () =
  let l = make_latency () in
  check_float "rtt self" 0.0 (Latency.rtt l 5 5)

let test_latency_symmetric_positive () =
  let l = make_latency () in
  for _ = 1 to 200 do
    let rng = Rng.create ~seed:5 in
    let i = Rng.int rng 120 and j = Rng.int rng 120 in
    if i <> j then begin
      check_float "symmetric" (Latency.rtt l i j) (Latency.rtt l j i);
      Alcotest.(check bool) "positive" true (Latency.rtt l i j > 0.0)
    end
  done

let test_latency_calibrated_mean () =
  let l = make_latency ~n:300 () in
  let rng = Rng.create ~seed:123 in
  let total = ref 0.0 and count = 10_000 in
  let drawn = ref 0 in
  while !drawn < count do
    let i = Rng.int rng 300 and j = Rng.int rng 300 in
    if i <> j then begin
      total := !total +. Latency.rtt l i j;
      incr drawn
    end
  done;
  let mean = !total /. float_of_int count in
  Alcotest.(check bool) "mean rtt ~ 0.182" true (Float.abs (mean -. 0.182) < 0.02)

let test_latency_jitter_bound () =
  let l = make_latency () in
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 500 do
    let i = Rng.int rng 120 and j = Rng.int rng 120 in
    if i <> j then begin
      let bound = Latency.jitter_bound l i j in
      Alcotest.(check bool) "bound <= 10ms" true (bound <= 0.010 +. float_eps);
      Alcotest.(check bool) "bound <= 10% lat" true
        (bound <= (0.1 *. Latency.one_way l i j) +. float_eps);
      let d = Latency.sample_one_way l rng i j in
      Alcotest.(check bool) "sample within jitter" true
        (d >= Latency.one_way l i j -. float_eps
        && d <= Latency.one_way l i j +. bound +. float_eps)
    end
  done

let test_latency_heterogeneous () =
  let l = make_latency ~n:300 () in
  (* A heavy-tailed model should have median well under the mean. *)
  Alcotest.(check bool) "median < mean" true (Latency.median_rtt l < Latency.mean_rtt l)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_dist_stats () =
  let d = Metrics.Dist.create () in
  List.iter (Metrics.Dist.add d) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 5 (Metrics.Dist.count d);
  check_float "mean" 3.0 (Metrics.Dist.mean d);
  check_float "median" 3.0 (Metrics.Dist.median d);
  check_float "min" 1.0 (Metrics.Dist.min d);
  check_float "max" 5.0 (Metrics.Dist.max d);
  check_float "p0" 1.0 (Metrics.Dist.percentile d 0.0);
  check_float "p100" 5.0 (Metrics.Dist.percentile d 1.0)

let test_dist_add_after_sort () =
  let d = Metrics.Dist.create () in
  List.iter (Metrics.Dist.add d) [ 2.0; 1.0 ];
  ignore (Metrics.Dist.median d);
  Metrics.Dist.add d 0.5;
  check_float "median after re-add" 1.0 (Metrics.Dist.median d)

let test_dist_cdf () =
  let d = Metrics.Dist.create () in
  for i = 1 to 100 do
    Metrics.Dist.add d (float_of_int i)
  done;
  let cdf = Metrics.Dist.cdf d ~points:5 in
  Alcotest.(check int) "points" 5 (List.length cdf);
  let values = List.map fst cdf in
  Alcotest.(check bool) "monotone" true (List.sort compare values = values);
  check_float "last is max" 100.0 (fst (List.nth cdf 4))

let test_dist_stddev () =
  let d = Metrics.Dist.create () in
  List.iter (Metrics.Dist.add d) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "stddev ~ 2.14" true (Float.abs (Metrics.Dist.stddev d -. 2.138) < 0.01)

let test_series_sum () =
  let s = Metrics.Series.create ~bucket:10.0 in
  Metrics.Series.add s ~time:1.0 1.0;
  Metrics.Series.add s ~time:5.0 2.0;
  Metrics.Series.add s ~time:15.0 4.0;
  Metrics.Series.add s ~time:35.0 8.0;
  Alcotest.(check (list (pair (float float_eps) (float float_eps))))
    "bucketed with gap" [ (0.0, 3.0); (10.0, 4.0); (20.0, 0.0); (30.0, 8.0) ]
    (Metrics.Series.rows s)

let test_series_gauge_carry () =
  let s = Metrics.Series.create ~bucket:1.0 in
  Metrics.Series.set s ~time:0.0 5.0;
  Metrics.Series.set s ~time:3.0 7.0;
  Alcotest.(check (list (pair (float float_eps) (float float_eps))))
    "carried gauge" [ (0.0, 5.0); (1.0, 5.0); (2.0, 5.0); (3.0, 7.0) ]
    (Metrics.Series.rows s)

let test_series_cumulative () =
  let s = Metrics.Series.create ~bucket:1.0 in
  Metrics.Series.add s ~time:0.5 1.0;
  Metrics.Series.add s ~time:1.5 2.0;
  Metrics.Series.add s ~time:2.5 3.0;
  Alcotest.(check (list (pair (float float_eps) (float float_eps))))
    "running sum" [ (0.0, 1.0); (1.0, 3.0); (2.0, 6.0) ]
    (Metrics.Series.cumulative s)

let test_table_render () =
  let s = Metrics.Table.render ~header:[ "a"; "long header" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has rows" true (String.length s > 0);
  (* header + separator + 2 rows + trailing newline *)
  Alcotest.(check int) "line count" 5 (List.length (String.split_on_char '\n' s))

(* ------------------------------------------------------------------ *)
(* Net *)

let make_net () =
  let e = Engine.create ~seed:5 () in
  let rng = Rng.create ~seed:50 in
  let l = Latency.create rng ~n:10 in
  (e, Net.create e l)

let test_net_delivery () =
  let e, net = make_net () in
  let got = ref None in
  Net.register net 1 (fun env -> got := Some env.Net.payload);
  Net.register net 0 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:100 "hello";
  Engine.run_until_idle e ();
  Alcotest.(check (option string)) "delivered" (Some "hello") !got;
  Alcotest.(check bool) "delivery delayed" true (Engine.now e > 0.0)

let test_net_dead_drop () =
  let e, net = make_net () in
  let got = ref 0 in
  Net.register net 1 (fun _ -> incr got);
  Net.set_alive net 1 false;
  Net.send net ~src:0 ~dst:1 ~size:10 "x";
  Engine.run_until_idle e ();
  Alcotest.(check int) "dropped" 0 !got;
  Net.set_alive net 1 true;
  Net.send net ~src:0 ~dst:1 ~size:10 "y";
  Engine.run_until_idle e ();
  Alcotest.(check int) "revived" 1 !got

let test_net_drop_hook () =
  let e, net = make_net () in
  let got = ref 0 in
  Net.register net 1 (fun _ -> incr got);
  Net.set_drop_hook net (Some (fun env -> env.Net.src = 0));
  Net.send net ~src:0 ~dst:1 ~size:10 "dropped";
  Net.send net ~src:2 ~dst:1 ~size:10 "kept";
  Engine.run_until_idle e ();
  Alcotest.(check int) "hook filtered" 1 !got

let test_net_byte_accounting () =
  let e, net = make_net () in
  Net.register net 1 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:111 "a";
  Net.send net ~src:0 ~dst:1 ~size:222 "b";
  Engine.run_until_idle e ();
  Alcotest.(check int) "tx" 333 (Net.tx_bytes net 0);
  Alcotest.(check int) "rx" 333 (Net.rx_bytes net 1);
  Alcotest.(check int) "sent" 2 (Net.messages_sent net);
  Alcotest.(check int) "delivered" 2 (Net.messages_delivered net)

let test_net_tx_counted_even_when_dropped () =
  let e, net = make_net () in
  Net.register net 1 (fun _ -> ());
  Net.set_alive net 1 false;
  Net.send net ~src:0 ~dst:1 ~size:50 "x";
  Engine.run_until_idle e ();
  Alcotest.(check int) "tx counted" 50 (Net.tx_bytes net 0);
  Alcotest.(check int) "rx not counted" 0 (Net.rx_bytes net 1)

let test_pending_resolve () =
  let e = Engine.create () in
  let p = Net.Pending.create e in
  let got = ref None and timed_out = ref false in
  let rid =
    Net.Pending.add p ~timeout:5.0 ~on_timeout:(fun () -> timed_out := true) (fun v -> got := Some v)
  in
  Alcotest.(check bool) "resolve ok" true (Net.Pending.resolve p rid "resp");
  Alcotest.(check bool) "duplicate rejected" false (Net.Pending.resolve p rid "resp2");
  Engine.run e ~until:10.0;
  Alcotest.(check (option string)) "value" (Some "resp") !got;
  Alcotest.(check bool) "no timeout after resolve" false !timed_out

let test_pending_timeout () =
  let e = Engine.create () in
  let p = Net.Pending.create e in
  let timed_out = ref false in
  let rid =
    Net.Pending.add p ~timeout:2.0 ~on_timeout:(fun () -> timed_out := true) (fun _ -> ())
  in
  Engine.run e ~until:10.0;
  Alcotest.(check bool) "timed out" true !timed_out;
  Alcotest.(check bool) "late resolve rejected" false (Net.Pending.resolve p rid "late")

let test_pending_cancel () =
  let e = Engine.create () in
  let p = Net.Pending.create e in
  let timed_out = ref false in
  let rid =
    Net.Pending.add p ~timeout:2.0 ~on_timeout:(fun () -> timed_out := true) (fun _ -> ())
  in
  Net.Pending.cancel p rid;
  Engine.run e ~until:10.0;
  Alcotest.(check bool) "no timeout after cancel" false !timed_out;
  Alcotest.(check int) "outstanding" 0 (Net.Pending.outstanding p)

let test_pending_timeout_exactly_once () =
  let e = Engine.create () in
  let p = Net.Pending.create e in
  let fired = ref 0 and delivered = ref 0 in
  let rid =
    Net.Pending.add p ~timeout:2.0 ~on_timeout:(fun () -> incr fired) (fun _ -> incr delivered)
  in
  Engine.run e ~until:50.0;
  Alcotest.(check int) "timeout fired exactly once" 1 !fired;
  Alcotest.(check int) "handler never ran" 0 !delivered;
  Alcotest.(check bool) "resolve after timeout rejected" false
    (Net.Pending.resolve p rid "late");
  Alcotest.(check int) "late resolve does not re-fire" 1 !fired;
  Alcotest.(check int) "late resolve does not deliver" 0 !delivered;
  Alcotest.(check int) "outstanding drained" 0 (Net.Pending.outstanding p)

let test_pending_drop_hook_timeout_interplay () =
  (* A dropped request's only failure signal is the RPC timeout: node 1
     would answer instantly, but the hook eats everything node 0 sends, so
     on_timeout must fire — exactly once — and nothing is delivered. *)
  let e, net = make_net () in
  let p = Net.Pending.create e in
  let fired = ref 0 and delivered = ref 0 in
  Net.register net 1 (fun env -> Net.send net ~src:1 ~dst:0 ~size:10 env.Net.payload);
  Net.register net 0 (fun env ->
      ignore (Net.Pending.resolve p (int_of_string env.Net.payload) env.Net.payload));
  Net.set_drop_hook net (Some (fun env -> env.Net.src = 0));
  let rid =
    Net.Pending.add p ~timeout:2.0
      ~on_timeout:(fun () -> incr fired)
      (fun _ -> incr delivered)
  in
  Net.send net ~src:0 ~dst:1 ~size:20 (string_of_int rid);
  Engine.run e ~until:30.0;
  Alcotest.(check int) "timeout fired once" 1 !fired;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "no pending left" 0 (Net.Pending.outstanding p)

let test_pending_late_response_ignored () =
  (* The response exists but arrives after the deadline: the timeout wins,
     and the late resolve must be a silent no-op (no double completion). *)
  let e, net = make_net () in
  let p = Net.Pending.create e in
  let fired = ref 0 and delivered = ref 0 in
  Net.register net 1 (fun env ->
      (* Hold the reply well past the requester's deadline. *)
      ignore
        (Engine.schedule e ~delay:5.0 (fun () ->
             Net.send net ~src:1 ~dst:0 ~size:10 env.Net.payload)));
  Net.register net 0 (fun env ->
      ignore (Net.Pending.resolve p (int_of_string env.Net.payload) env.Net.payload));
  let rid =
    Net.Pending.add p ~timeout:2.0
      ~on_timeout:(fun () -> incr fired)
      (fun _ -> incr delivered)
  in
  Net.send net ~src:0 ~dst:1 ~size:20 (string_of_int rid);
  Engine.run e ~until:30.0;
  Alcotest.(check int) "timeout fired once" 1 !fired;
  Alcotest.(check int) "late reply not delivered" 0 !delivered;
  Alcotest.(check int) "no pending left" 0 (Net.Pending.outstanding p)

(* ------------------------------------------------------------------ *)
(* Churn *)

let test_churn_cycle () =
  let e = Engine.create ~seed:1 () in
  let rng = Rng.create ~seed:2 in
  let leaves = ref [] and joins = ref [] in
  let c =
    Churn.start e rng ~mean_lifetime:10.0 ~rejoin_delay:1.0 ~addrs:[ 0; 1; 2 ]
      ~on_leave:(fun a -> leaves := a :: !leaves)
      ~on_join:(fun a -> joins := a :: !joins)
      ()
  in
  Engine.run e ~until:200.0;
  Alcotest.(check bool) "several departures" true (Churn.departures c > 10);
  Alcotest.(check bool) "joins track leaves" true
    (List.length !joins >= List.length !leaves - 3)

let test_churn_stop () =
  let e = Engine.create ~seed:1 () in
  let rng = Rng.create ~seed:2 in
  let c =
    Churn.start e rng ~mean_lifetime:5.0 ~rejoin_delay:1.0 ~addrs:[ 0 ] ~on_leave:(fun _ -> ())
      ~on_join:(fun _ -> ()) ()
  in
  Engine.run e ~until:20.0;
  Churn.stop c;
  let before = Churn.departures c in
  Engine.run e ~until:500.0;
  Alcotest.(check int) "no departures after stop" before (Churn.departures c)

(* ------------------------------------------------------------------ *)
(* Rpc *)

let test_rpc_call_resolve () =
  let e = Engine.create () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  let got = ref None and gave_up = ref false and sends = ref 0 in
  let tok =
    Rpc.call rpc ~src:0 ~dst:1
      ~policy:(Rpc.policy ~timeout:2.0 ())
      ~send:(fun _ -> incr sends)
      ~on_give_up:(fun () -> gave_up := true)
      (fun v -> got := Some v)
  in
  Alcotest.(check bool) "resolve ok" true (Rpc.resolve rpc (Rpc.rid tok) "resp");
  Alcotest.(check bool) "duplicate rejected" false (Rpc.resolve rpc (Rpc.rid tok) "again");
  Engine.run e ~until:10.0;
  Alcotest.(check (option string)) "value" (Some "resp") !got;
  Alcotest.(check bool) "no give-up after resolve" false !gave_up;
  Alcotest.(check int) "one send" 1 !sends;
  Alcotest.(check int) "no outstanding" 0 (Rpc.outstanding rpc)

let test_rpc_retry_then_resolve () =
  let e = Engine.create () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  let sends = ref 0 and got = ref None and gave_up = ref false in
  ignore
    (Rpc.call rpc ~src:0 ~dst:1
       ~policy:(Rpc.policy ~attempts:3 ~backoff:1.0 ~timeout:2.0 ())
       ~send:(fun r ->
         incr sends;
         (* The answer arrives only for the second attempt. *)
         if !sends = 2 then
           ignore (Engine.schedule e ~delay:0.5 (fun () -> ignore (Rpc.resolve rpc r "late"))))
       ~on_give_up:(fun () -> gave_up := true)
       (fun v -> got := Some v));
  Engine.run e ~until:60.0;
  Alcotest.(check int) "two sends" 2 !sends;
  Alcotest.(check (option string)) "resolved on retry" (Some "late") !got;
  Alcotest.(check bool) "no give-up" false !gave_up

let test_rpc_giveup_after_attempts () =
  let e = Engine.create () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  let rids = ref [] and gave_up = ref 0 in
  ignore
    (Rpc.call rpc ~src:0 ~dst:1
       ~policy:(Rpc.policy ~attempts:3 ~backoff:0.5 ~timeout:1.0 ())
       ~send:(fun r -> rids := r :: !rids)
       ~on_give_up:(fun () -> incr gave_up)
       (fun (_ : unit) -> Alcotest.fail "no response was ever sent"));
  Engine.run e ~until:60.0;
  Alcotest.(check int) "three attempts" 3 (List.length !rids);
  Alcotest.(check int) "same rid across attempts" 1
    (List.length (List.sort_uniq compare !rids));
  Alcotest.(check int) "give-up exactly once" 1 !gave_up

let test_rpc_deadline_caps_retries () =
  let e = Engine.create () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  let sends = ref 0 and gave_up_at = ref nan in
  ignore
    (Rpc.call rpc ~src:0 ~dst:1 ~deadline:2.5
       ~policy:(Rpc.policy ~attempts:10 ~backoff:1.0 ~timeout:1.0 ())
       ~send:(fun _ -> incr sends)
       ~on_give_up:(fun () -> gave_up_at := Engine.now e)
       (fun (_ : unit) -> ()));
  Engine.run e ~until:60.0;
  Alcotest.(check bool) "deadline bounds the attempts" true (!sends < 10);
  Alcotest.(check bool) "gave up by the deadline" true (!gave_up_at <= 2.5 +. 1e-9)

let test_rpc_cap_queues_and_drains () =
  let e = Engine.create () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) ~in_flight_cap:1 () in
  let sends = ref [] in
  let call tag =
    Rpc.call rpc ~src:0 ~dst:1
      ~policy:(Rpc.policy ~timeout:5.0 ())
      ~send:(fun _ -> sends := tag :: !sends)
      ~on_give_up:(fun () -> ())
      (fun (_ : string) -> ())
  in
  let t1 = call "a" in
  let _t2 = call "b" in
  Alcotest.(check (list string)) "second call queued" [ "a" ] (List.rev !sends);
  Alcotest.(check int) "queued count" 1 (Rpc.queued rpc ~dst:1);
  Alcotest.(check int) "in-flight count" 1 (Rpc.in_flight rpc ~dst:1);
  ignore (Rpc.resolve rpc (Rpc.rid t1) "done");
  Alcotest.(check (list string)) "resolving drains the queue" [ "a"; "b" ]
    (List.rev !sends);
  Alcotest.(check int) "queue empty" 0 (Rpc.queued rpc ~dst:1)

let test_rpc_dead_node_retry_giveup () =
  (* An in-flight call to a node that died resolves through the full
     timeout -> retry -> give-up ladder rather than hanging. *)
  let e, net = make_net () in
  let rpc = Rpc.create e ~rng:(Rng.create ~seed:3) () in
  Net.register net 1 (fun _ -> ());
  Net.set_alive net 1 false;
  let sends = ref 0 and gave_up = ref 0 in
  ignore
    (Rpc.call rpc ~src:0 ~dst:1
       ~policy:(Rpc.policy ~attempts:3 ~backoff:0.5 ~timeout:1.0 ())
       ~send:(fun rid ->
         incr sends;
         Net.send net ~src:0 ~dst:1 ~size:16 (string_of_int rid))
       ~on_give_up:(fun () -> incr gave_up)
       (fun (_ : string) -> Alcotest.fail "resolved against a dead node"));
  Engine.run e ~until:60.0;
  Alcotest.(check int) "all attempts spent" 3 !sends;
  Alcotest.(check int) "one give-up" 1 !gave_up;
  Alcotest.(check int) "no outstanding" 0 (Rpc.outstanding rpc)

let prop_rpc_backoff_monotone =
  QCheck.Test.make ~name:"rpc nominal backoff is monotone and capped" ~count:200
    QCheck.(
      triple (float_range 0.01 5.0) (float_range 1.0 4.0) (float_range 0.01 20.0))
    (fun (base, mult, cap) ->
      let p =
        Rpc.policy ~attempts:10 ~backoff:base ~backoff_mult:mult ~backoff_max:cap
          ~timeout:1.0 ()
      in
      let rec go prev attempt =
        if attempt > 10 then true
        else
          let b = Rpc.backoff_nominal p ~attempt in
          b >= prev -. 1e-9 && b <= cap +. 1e-9 && go b (attempt + 1)
      in
      go 0.0 1)

let prop_rpc_schedule_deterministic =
  QCheck.Test.make ~name:"rpc retry schedule is seed-deterministic" ~count:50
    QCheck.(pair (int_range 1 5) (int_bound 1000))
    (fun (attempts, seed) ->
      let run () =
        let e = Engine.create ~seed:9 () in
        let rpc = Rpc.create e ~rng:(Rng.create ~seed) () in
        let times = ref [] in
        ignore
          (Rpc.call rpc ~src:0 ~dst:1
             ~policy:(Rpc.policy ~attempts ~backoff:0.3 ~jitter:0.5 ~timeout:1.0 ())
             ~send:(fun _ -> times := Engine.now e :: !times)
             ~on_give_up:(fun () -> times := (-1.0 -. Engine.now e) :: !times)
             (fun (_ : unit) -> ()));
        Engine.run e ~until:200.0;
        List.rev !times
      in
      run () = run ())

let prop_rpc_cancel_silent =
  QCheck.Test.make ~name:"rpc cancel never fires a late callback" ~count:100
    QCheck.(pair (float_range 0.0 10.0) (int_bound 4))
    (fun (cancel_at, extra_attempts) ->
      let e = Engine.create ~seed:5 () in
      let rpc = Rpc.create e ~rng:(Rng.create ~seed:6) () in
      let cancelled = ref false and late = ref false in
      let tok =
        Rpc.call rpc ~src:0 ~dst:1
          ~policy:(Rpc.policy ~attempts:(1 + extra_attempts) ~backoff:0.4 ~timeout:1.0 ())
          ~send:(fun _ -> ())
          ~on_give_up:(fun () -> if !cancelled then late := true)
          (fun (_ : unit) -> if !cancelled then late := true)
      in
      ignore
        (Engine.schedule e ~delay:cancel_at (fun () ->
             cancelled := true;
             Rpc.cancel rpc tok));
      Engine.run e ~until:100.0;
      not !late)

let prop_rpc_cap_never_exceeded =
  QCheck.Test.make ~name:"rpc in-flight cap never exceeded" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (cap, ncalls) ->
      let e = Engine.create ~seed:7 () in
      let rpc = Rpc.create e ~rng:(Rng.create ~seed:8) ~in_flight_cap:cap () in
      let ok = ref true and live = ref 0 in
      for i = 1 to ncalls do
        ignore
          (Engine.schedule e ~delay:(0.1 *. float_of_int i) (fun () ->
               ignore
                 (Rpc.call rpc ~src:0 ~dst:1
                    ~policy:(Rpc.policy ~timeout:1.0 ())
                    ~send:(fun _ ->
                      incr live;
                      if !live > cap || Rpc.in_flight rpc ~dst:1 > cap then ok := false)
                    ~on_give_up:(fun () -> decr live)
                    (fun (_ : unit) -> ()))))
      done;
      Engine.run e ~until:100.0;
      !ok && Rpc.outstanding rpc = 0)

let test_churn_stop_no_stray_rejoin () =
  (* Stopping churn while a slot is mid-downtime must suppress the
     pending rejoin, not just future departures. *)
  let e = Engine.create ~seed:1 () in
  let rng = Rng.create ~seed:2 in
  let joins = ref 0 in
  let c =
    Churn.start e rng ~mean_lifetime:5.0 ~rejoin_delay:2.0 ~addrs:[ 0; 1; 2 ]
      ~on_leave:(fun _ -> ())
      ~on_join:(fun _ -> incr joins)
      ()
  in
  Engine.run e ~until:20.0;
  Churn.stop c;
  let before = !joins in
  Engine.run e ~until:500.0;
  Alcotest.(check int) "no rejoins after stop" before !joins

let prop_dist_sorted =
  QCheck.Test.make ~name:"dist sorted array is sorted & complete" ~count:200
    QCheck.(list (float_bound_exclusive 100.0))
    (fun l ->
      let d = Metrics.Dist.create () in
      List.iter (Metrics.Dist.add d) l;
      let arr = Metrics.Dist.to_sorted_array d in
      Array.length arr = List.length l
      && List.sort compare l = Array.to_list arr)

let prop_series_cumulative_monotone =
  QCheck.Test.make ~name:"series cumulative is monotone for positive adds" ~count:100
    QCheck.(list (pair (float_bound_exclusive 100.0) (float_bound_exclusive 10.0)))
    (fun samples ->
      let s = Metrics.Series.create ~bucket:5.0 in
      List.iter (fun (t, v) -> Metrics.Series.add s ~time:t v) samples;
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone (Metrics.Series.cumulative s))

(* ------------------------------------------------------------------ *)
(* Sketch: bounded-memory streaming quantiles *)

let sketch_of_list l =
  let s = Metrics.Sketch.create () in
  List.iter (Metrics.Sketch.record s) l;
  s

let dist_of_list l =
  let d = Metrics.Dist.create () in
  List.iter (Metrics.Dist.add d) l;
  d

let sketch_quantile_points = [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let sketch_within_bound ~exact ~est =
  Float.abs (est -. exact) <= (Metrics.Sketch.relative_error *. Float.abs exact) +. 1e-9

let check_sketch_error ~what l =
  let s = sketch_of_list l and d = dist_of_list l in
  List.iter
    (fun q ->
      let exact = Metrics.Dist.percentile d q in
      let est = Metrics.Sketch.quantile s q in
      if not (sketch_within_bound ~exact ~est) then
        Alcotest.failf "%s q=%g: sketch %g vs exact %g exceeds %.2f%% relative error" what q
          est exact
          (Metrics.Sketch.relative_error *. 100.0))
    sketch_quantile_points

let prop_sketch_bounded_error =
  QCheck.Test.make ~name:"sketch quantiles within relative error of exact" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 400) (float_bound_exclusive 1000.0))
    (fun l ->
      let s = sketch_of_list l and d = dist_of_list l in
      List.for_all
        (fun q ->
          sketch_within_bound
            ~exact:(Metrics.Dist.percentile d q)
            ~est:(Metrics.Sketch.quantile s q))
        sketch_quantile_points)

let test_sketch_lognormal () =
  (* Heavy-tailed input spanning ~7 decades of magnitude. *)
  let rng = Rng.create ~seed:17 in
  let l = List.init 10_000 (fun _ -> exp (Rng.gaussian rng ~mu:0.0 ~sigma:2.0)) in
  check_sketch_error ~what:"lognormal" l

let test_sketch_adversarial_sorted () =
  (* Monotone streams are the classic worst case for streaming quantile
     estimators that assume shuffled input; the log-bucketed sketch's
     bound is order-independent. *)
  let asc = List.init 5_000 (fun i -> float_of_int (i + 1) *. 0.25) in
  check_sketch_error ~what:"ascending" asc;
  check_sketch_error ~what:"descending" (List.rev asc)

let test_sketch_zeros_and_stats () =
  let s = sketch_of_list [ 0.0; 0.0; 1.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Metrics.Sketch.count s);
  check_float "sum" 5.0 (Metrics.Sketch.sum s);
  check_float "min" 0.0 (Metrics.Sketch.min s);
  check_float "max tracked exactly" 4.0 (Metrics.Sketch.max s);
  check_float "q0 hits the zero bucket" 0.0 (Metrics.Sketch.quantile s 0.0);
  check_float "q under zero mass" 0.0 (Metrics.Sketch.quantile s 0.3)

(* The sum is excluded: float addition is not associative, and merge
   makes no claim about it beyond ordinary FP drift. *)
let sketch_fingerprint s =
  ( Metrics.Sketch.count s,
    Metrics.Sketch.min s,
    Metrics.Sketch.max s,
    Metrics.Sketch.buckets s )

let prop_sketch_merge_associative =
  QCheck.Test.make ~name:"sketch merge is associative" ~count:100
    QCheck.(
      triple
        (list (float_bound_exclusive 100.0))
        (list (float_bound_exclusive 100.0))
        (list (float_bound_exclusive 100.0)))
    (fun (la, lb, lc) ->
      (* (a <> b) <> c *)
      let left = sketch_of_list la in
      Metrics.Sketch.merge ~into:left (sketch_of_list lb);
      Metrics.Sketch.merge ~into:left (sketch_of_list lc);
      (* a <> (b <> c) *)
      let bc = sketch_of_list lb in
      Metrics.Sketch.merge ~into:bc (sketch_of_list lc);
      let right = sketch_of_list la in
      Metrics.Sketch.merge ~into:right bc;
      sketch_fingerprint left = sketch_fingerprint right)

let prop_sketch_merge_matches_union =
  QCheck.Test.make ~name:"sketch merge equals recording the union" ~count:100
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (la, lb) ->
      let merged = sketch_of_list la in
      Metrics.Sketch.merge ~into:merged (sketch_of_list lb);
      sketch_fingerprint merged = sketch_fingerprint (sketch_of_list (la @ lb)))

let test_sketch_copy_independent () =
  let s = sketch_of_list [ 1.0; 2.0; 3.0 ] in
  let c = Metrics.Sketch.copy s in
  Metrics.Sketch.record s 100.0;
  Alcotest.(check int) "copy unaffected" 3 (Metrics.Sketch.count c);
  Alcotest.(check int) "original grew" 4 (Metrics.Sketch.count s)

let test_sketch_record_no_alloc () =
  (* [record] must not allocate: it runs once per query in million-query
     open-loop runs. Counting probe over the minor heap; floats arrive
     already boxed (list elements), so any delta is record's own.
     Meaningful only under the native-code compiler. *)
  match Sys.backend_type with
  | Sys.Native ->
    let s = Metrics.Sketch.create () in
    let values = List.init 5_000 (fun i -> float_of_int ((i mod 1000) - 2) *. 0.37) in
    let record v = Metrics.Sketch.record s v in
    List.iter record values;
    let before = Gc.minor_words () in
    List.iter record values;
    let delta = Gc.minor_words () -. before in
    Alcotest.(check bool)
      (Printf.sprintf "5k records allocated %g minor words" delta)
      true (delta < 64.0)
  | Sys.Bytecode | Sys.Other _ -> ()

(* ------------------------------------------------------------------ *)
(* Tbl: deterministic hash-table traversal *)

let test_tbl_iter_sorted_order () =
  let tbl = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace tbl k (k * 10)) [ 42; 3; 17; 99; 0; 8 ];
  let seen = ref [] in
  Tbl.iter_sorted ~cmp:Int.compare (fun k v -> seen := (k, v) :: !seen) tbl;
  Alcotest.(check (list (pair int int)))
    "ascending key order"
    [ (0, 0); (3, 30); (8, 80); (17, 170); (42, 420); (99, 990) ]
    (List.rev !seen)

let test_tbl_fold_matches_reference () =
  let tbl = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace tbl k (string_of_int k)) [ 5; 1; 9; 2 ];
  let folded = Tbl.fold_sorted ~cmp:Int.compare (fun _ v acc -> acc ^ v) tbl "" in
  Alcotest.(check string) "fold visits keys ascending" "1259" folded;
  Alcotest.(check (list int)) "keys_sorted" [ 1; 2; 5; 9 ] (Tbl.keys_sorted ~cmp:Int.compare tbl)

let test_tbl_remove_during_iter () =
  let tbl = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) [ 1; 2; 3; 4; 5 ];
  (* The snapshot makes removal during traversal safe — the PR4 sweep
     relies on this at the node_state pred_since site. *)
  Tbl.iter_sorted ~cmp:Int.compare (fun k () -> if k mod 2 = 0 then Hashtbl.remove tbl k) tbl;
  Alcotest.(check (list int)) "odd keys survive" [ 1; 3; 5 ] (Tbl.keys_sorted ~cmp:Int.compare tbl)

let test_tbl_min_by () =
  let tbl = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) [ (1, 30); (2, 10); (3, 20); (4, 10) ];
  let never _ _ = false in
  (match Tbl.min_by ~cmp:Int.compare ~skip:never ~score:(fun _ v -> v) tbl with
  | Some (k, v, s) ->
    (* Ties on score (keys 2 and 4 both score 10) go to the smaller key. *)
    Alcotest.(check (triple int int int)) "tie -> smallest key" (2, 10, 10) (k, v, s)
  | None -> Alcotest.fail "expected a minimum");
  (match
     Tbl.min_by ~cmp:Int.compare ~skip:(fun _ v -> v <= 10) ~score:(fun _ v -> v) tbl
   with
  | Some (k, _, _) -> Alcotest.(check int) "filtered minimum" 3 k
  | None -> Alcotest.fail "expected a minimum");
  Alcotest.(check bool) "all skipped -> none" true
    (Tbl.min_by ~cmp:Int.compare ~skip:(fun _ _ -> true) ~score:(fun _ v -> v) tbl = None)

(* The determinism contract: traversal order depends only on the key set,
   never on insertion order or resize history. *)
let prop_tbl_order_insertion_independent =
  QCheck.Test.make ~name:"tbl traversal independent of insertion order" ~count:200
    QCheck.(list small_nat)
    (fun keys ->
      let build ks =
        let tbl = Hashtbl.create 1 in
        List.iter (fun k -> Hashtbl.replace tbl k k) ks;
        Tbl.fold_sorted ~cmp:Int.compare (fun k _ acc -> k :: acc) tbl []
      in
      build keys = build (List.rev keys)
      && build keys = List.rev (List.sort_uniq Int.compare keys))

let test_latency_deterministic () =
  let l1 = make_latency () and l2 = make_latency () in
  for i = 0 to 50 do
    for j = 0 to 50 do
      check_float "same seeds, same space" (Latency.rtt l1 i j) (Latency.rtt l2 i j)
    done
  done

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "octo_sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "coin bias" `Quick test_rng_coin;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample small pool" `Quick test_rng_sample_small_pool;
          Alcotest.test_case "bytes layout" `Quick test_rng_bytes_layout;
          Alcotest.test_case "bytes uniformish" `Quick test_rng_bytes_uniformish;
        ]
        @ qsuite [ prop_shuffle_is_permutation; prop_permutation_valid ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "size and clear" `Quick test_heap_size_clear;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_pop_nondecreasing; prop_heap_ties_fifo ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "every stops" `Quick test_engine_every;
          Alcotest.test_case "every cancel" `Quick test_engine_every_cancel;
          Alcotest.test_case "run boundary" `Quick test_engine_run_until_boundary;
          Alcotest.test_case "past delay clamped" `Quick test_engine_past_delay_clamped;
          Alcotest.test_case "idle budget" `Quick test_engine_run_until_idle_budget;
        ] );
      ( "latency",
        [
          Alcotest.test_case "self zero" `Quick test_latency_self_zero;
          Alcotest.test_case "symmetric positive" `Quick test_latency_symmetric_positive;
          Alcotest.test_case "calibrated mean" `Quick test_latency_calibrated_mean;
          Alcotest.test_case "jitter bound" `Quick test_latency_jitter_bound;
          Alcotest.test_case "heterogeneous" `Quick test_latency_heterogeneous;
          Alcotest.test_case "deterministic" `Quick test_latency_deterministic;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "dist stats" `Quick test_dist_stats;
          Alcotest.test_case "dist add after sort" `Quick test_dist_add_after_sort;
          Alcotest.test_case "dist cdf" `Quick test_dist_cdf;
          Alcotest.test_case "dist stddev" `Quick test_dist_stddev;
          Alcotest.test_case "series sum" `Quick test_series_sum;
          Alcotest.test_case "series gauge carry" `Quick test_series_gauge_carry;
          Alcotest.test_case "series cumulative" `Quick test_series_cumulative;
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "sketch lognormal" `Quick test_sketch_lognormal;
          Alcotest.test_case "sketch adversarial sorted" `Quick test_sketch_adversarial_sorted;
          Alcotest.test_case "sketch zeros & stats" `Quick test_sketch_zeros_and_stats;
          Alcotest.test_case "sketch copy" `Quick test_sketch_copy_independent;
          Alcotest.test_case "sketch record no alloc" `Quick test_sketch_record_no_alloc;
        ]
        @ qsuite
            [
              prop_dist_sorted;
              prop_series_cumulative_monotone;
              prop_sketch_bounded_error;
              prop_sketch_merge_associative;
              prop_sketch_merge_matches_union;
            ] );
      ( "tbl",
        [
          Alcotest.test_case "iter_sorted ascending" `Quick test_tbl_iter_sorted_order;
          Alcotest.test_case "fold/keys reference" `Quick test_tbl_fold_matches_reference;
          Alcotest.test_case "remove during iter" `Quick test_tbl_remove_during_iter;
          Alcotest.test_case "min_by selection" `Quick test_tbl_min_by;
        ]
        @ qsuite [ prop_tbl_order_insertion_independent ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "dead drop" `Quick test_net_dead_drop;
          Alcotest.test_case "drop hook" `Quick test_net_drop_hook;
          Alcotest.test_case "byte accounting" `Quick test_net_byte_accounting;
          Alcotest.test_case "tx counted when dropped" `Quick test_net_tx_counted_even_when_dropped;
          Alcotest.test_case "pending resolve" `Quick test_pending_resolve;
          Alcotest.test_case "pending timeout" `Quick test_pending_timeout;
          Alcotest.test_case "pending cancel" `Quick test_pending_cancel;
          Alcotest.test_case "timeout exactly once" `Quick test_pending_timeout_exactly_once;
          Alcotest.test_case "drop hook + timeout" `Quick test_pending_drop_hook_timeout_interplay;
          Alcotest.test_case "late response ignored" `Quick test_pending_late_response_ignored;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call and resolve" `Quick test_rpc_call_resolve;
          Alcotest.test_case "retry then resolve" `Quick test_rpc_retry_then_resolve;
          Alcotest.test_case "give-up after attempts" `Quick test_rpc_giveup_after_attempts;
          Alcotest.test_case "deadline caps retries" `Quick test_rpc_deadline_caps_retries;
          Alcotest.test_case "cap queues and drains" `Quick test_rpc_cap_queues_and_drains;
          Alcotest.test_case "dead node retry give-up" `Quick test_rpc_dead_node_retry_giveup;
        ]
        @ qsuite
            [
              prop_rpc_backoff_monotone;
              prop_rpc_schedule_deterministic;
              prop_rpc_cancel_silent;
              prop_rpc_cap_never_exceeded;
            ] );
      ( "churn",
        [
          Alcotest.test_case "cycle" `Quick test_churn_cycle;
          Alcotest.test_case "stop" `Quick test_churn_stop;
          Alcotest.test_case "stop suppresses rejoin" `Quick test_churn_stop_no_stray_rejoin;
        ] );
    ]
