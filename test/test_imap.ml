(* Model-based equivalence for Imap, the sorted-parallel-array map that
   replaced per-node Hashtbls in the population-scale refactor. Random
   operation sequences are applied to an Imap and to a Hashtbl model;
   every observation the call sites rely on must agree — including
   iteration order, which for the Hashtbl model means the sorted order
   the old code obtained through Tbl.iter_sorted. *)

module Imap = Octo_sim.Imap

(* Small key domain so sequences revisit keys: replace-on-set, remove of
   present keys, and shrinking back to empty all get exercised. *)
let key_bound = 32

type op = Set of int * int | Remove of int | Clear

let op_gen =
  QCheck.map
    (fun (tag, key, v) ->
      if tag < 7 then Set (key, v) else if tag < 9 then Remove key else Clear)
    QCheck.(triple (int_bound 9) (int_bound (key_bound - 1)) (int_bound 999))

let apply_imap m = function
  | Set (k, v) -> Imap.set m k v
  | Remove k -> Imap.remove m k
  | Clear -> Imap.clear m

let apply_model tbl = function
  | Set (k, v) -> Hashtbl.replace tbl k v
  | Remove k -> Hashtbl.remove tbl k
  | Clear -> Hashtbl.reset tbl

let model_sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let build ops =
  let m = Imap.create () in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun op ->
      apply_imap m op;
      apply_model tbl op)
    ops;
  (m, tbl)

let test_lookup_equivalence =
  QCheck.Test.make ~name:"find_opt/mem/length match the Hashtbl model" ~count:500
    QCheck.(list op_gen)
    (fun ops ->
      let m, tbl = build ops in
      if Imap.length m <> Hashtbl.length tbl then false
      else if Imap.is_empty m <> (Hashtbl.length tbl = 0) then false
      else begin
        let ok = ref true in
        for k = 0 to key_bound - 1 do
          if Imap.find_opt m k <> Hashtbl.find_opt tbl k then ok := false;
          if Imap.mem m k <> Hashtbl.mem tbl k then ok := false
        done;
        !ok
      end)

let test_iteration_order =
  QCheck.Test.make ~name:"iter/fold visit ascending key order (= iter_sorted)" ~count:500
    QCheck.(list op_gen)
    (fun ops ->
      let m, tbl = build ops in
      let expected = model_sorted tbl in
      let via_iter = ref [] in
      Imap.iter (fun k v -> via_iter := (k, v) :: !via_iter) m;
      let via_fold = Imap.fold (fun k v acc -> (k, v) :: acc) m [] in
      List.rev !via_iter = expected && List.rev via_fold = expected)

let test_first_and_ceil =
  QCheck.Test.make ~name:"first/find_ceil = brute force over the model" ~count:500
    QCheck.(list op_gen)
    (fun ops ->
      let m, tbl = build ops in
      let sorted = model_sorted tbl in
      let first_ok =
        Imap.first m = (match sorted with [] -> None | kv :: _ -> Some kv)
      in
      first_ok
      && List.for_all
           (fun probe ->
             let expected = List.find_opt (fun (k, _) -> k >= probe) sorted in
             Imap.find_ceil m probe = expected)
           (List.init (key_bound + 2) (fun i -> i - 1)))

let test_min_by =
  QCheck.Test.make ~name:"min_by = first minimum in ascending key order" ~count:500
    QCheck.(list op_gen)
    (fun ops ->
      let m, tbl = build ops in
      let skip k _ = k mod 3 = 0 in
      let score _ v = v mod 7 in
      let expected =
        List.fold_left
          (fun acc (k, v) ->
            if skip k v then acc
            else
              let s = score k v in
              match acc with
              | Some (_, _, best) when best <= s -> acc
              | _ -> Some (k, v, s))
          None (model_sorted tbl)
      in
      Imap.min_by ~skip ~score m = expected)

let test_remove_releases_then_reusable =
  QCheck.Test.make ~name:"emptied maps accept fresh inserts" ~count:200
    QCheck.(list op_gen)
    (fun ops ->
      let m, tbl = build ops in
      (* Drain everything through remove (not clear), then reuse. *)
      List.iter (fun (k, _) -> Imap.remove m k) (model_sorted tbl);
      if not (Imap.is_empty m) then false
      else begin
        Imap.set m 7 42;
        Imap.find_opt m 7 = Some 42 && Imap.length m = 1
      end)

let () =
  Alcotest.run "imap"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            test_lookup_equivalence;
            test_iteration_order;
            test_first_and_ceil;
            test_min_by;
            test_remove_releases_then_reusable;
          ] );
    ]
