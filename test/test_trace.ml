(* Tests for the structured trace layer and the online invariant checker:
   ring-buffer mechanics, synthetic violations, the end-to-end checked
   scenario, fault injection, and cross-seed determinism. *)

module Trace = Octo_sim.Trace
module Engine = Octo_sim.Engine
module Rng = Octo_sim.Rng
module Latency = Octo_sim.Latency
module Peer = Octo_chord.Peer

let with_trace ?capacity f =
  let t = Trace.create ?capacity () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Trace mechanics *)

let test_disabled_by_default () =
  Alcotest.(check bool) "off" false (Trace.on ());
  (* Emission without a sink is a silent no-op. *)
  Trace.emit ~time:0.0 ~node:1 (Trace.Walk_done { ok = true })

let test_install_uninstall () =
  with_trace (fun t ->
      Alcotest.(check bool) "on" true (Trace.on ());
      Trace.emit ~time:1.0 ~node:2 (Trace.Walk_done { ok = false });
      Alcotest.(check int) "seen" 1 (Trace.seen t));
  Alcotest.(check bool) "off after" false (Trace.on ())

let test_ring_retention () =
  with_trace ~capacity:8 (fun t ->
      for i = 0 to 19 do
        Trace.emit ~time:(float_of_int i) ~node:i (Trace.Circuit_relay { relay = i })
      done;
      Alcotest.(check int) "seen counts past wrap" 20 (Trace.seen t);
      let evs = Trace.events t in
      Alcotest.(check int) "retains capacity" 8 (List.length evs);
      Alcotest.(check (list int)) "oldest-first window"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun (e : Trace.event) -> e.Trace.seq) evs))

let test_subscribe () =
  with_trace (fun t ->
      let got = ref [] in
      Trace.subscribe t (fun ev -> got := ev.Trace.seq :: !got);
      Trace.emit ~time:0.0 ~node:0 (Trace.Walk_done { ok = true });
      Trace.emit ~time:1.0 ~node:0 (Trace.Walk_done { ok = true });
      Alcotest.(check (list int)) "synchronous delivery" [ 1; 0 ] !got)

let test_json_shape () =
  with_trace (fun t ->
      Trace.emit ~time:1.5 ~node:3
        (Trace.Net_drop { src = 3; dst = 4; size = 36; reason = "ho\"ok" });
      match Trace.events t with
      | [ ev ] ->
        let json = Trace.to_json ev in
        Alcotest.(check string) "escaped json"
          "{\"seq\":0,\"t\":1.500000,\"node\":3,\"ev\":\"net_drop\",\"src\":3,\"dst\":4,\"size\":36,\"reason\":\"ho\\\"ok\"}"
          json
      | _ -> Alcotest.fail "expected one event")

let test_engine_emits_sched () =
  with_trace (fun t ->
      let e = Engine.create () in
      ignore (Engine.schedule e ~delay:2.5 (fun () -> ()));
      match Trace.events t with
      | [ { Trace.data = Trace.Sched { at }; node = -1; _ } ] ->
        Alcotest.(check (float 1e-9)) "scheduled time" 2.5 at
      | _ -> Alcotest.fail "expected one Sched event")

let test_net_emits_send_deliver_drop () =
  with_trace (fun t ->
      let e = Engine.create ~seed:5 () in
      let rng = Rng.create ~seed:50 in
      let net = Octo_sim.Net.create e (Latency.create rng ~n:10) in
      Octo_sim.Net.register net 1 (fun _ -> ());
      Octo_sim.Net.send net ~src:0 ~dst:1 ~size:100 "ok";
      Engine.run_until_idle e ();
      Octo_sim.Net.set_alive net 1 false;
      Octo_sim.Net.send net ~src:0 ~dst:1 ~size:50 "to-dead";
      Engine.run_until_idle e ();
      let tags =
        List.filter_map
          (fun (ev : Trace.event) ->
            match ev.Trace.data with
            | Trace.Net_send _ -> Some "send"
            | Trace.Net_deliver _ -> Some "deliver"
            | Trace.Net_drop { reason; _ } -> Some ("drop:" ^ reason)
            | _ -> None)
          (Trace.events t)
      in
      Alcotest.(check (list string)) "net event stream"
        [ "send"; "deliver"; "send"; "drop:dead" ] tags)

(* ------------------------------------------------------------------ *)
(* Invariant checker on synthetic streams *)

let make_world ?(n = 30) ?(seed = 42) () =
  let engine = Engine.create ~seed () in
  let lat_rng = Rng.split (Engine.rng engine) in
  let latency = Latency.create lat_rng ~n:(n + 1) in
  let w = Octopus.World.create engine latency ~n in
  Octopus.Serve.install w;
  let _ = Octopus.Ca.create w in
  (engine, w)

let synthetic f =
  with_trace (fun trace ->
      let _engine, w = make_world () in
      let chk = Octopus.Invariant.create w in
      Octopus.Invariant.attach chk trace;
      f w chk)

let test_clean_synthetic_stream () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:2
        (Trace.Query_sent { cid = 1; target_addr = 9; target_id = 9; relays = [ 3; 4; 5; 6 ]; dummy = false });
      Octopus.Invariant.finish chk;
      Alcotest.(check bool) "clean" true (Octopus.Invariant.ok chk))

let test_duplicate_relay_flagged () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:2
        (Trace.Query_sent { cid = 7; target_addr = 9; target_id = 9; relays = [ 3; 4; 3; 6 ]; dummy = false });
      Alcotest.(check int) "one violation" 1 (List.length (Octopus.Invariant.violations chk)))

let test_initiator_relay_flagged () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:4
        (Trace.Query_sent { cid = 8; target_addr = 9; target_id = 9; relays = [ 3; 4; 5; 6 ]; dummy = false });
      match Octopus.Invariant.violations chk with
      | [ v ] ->
        Alcotest.(check bool) "offending event kept" true (v.Octopus.Invariant.event <> None)
      | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs))

let test_revoked_routing_item_flagged () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:9 (Trace.Revoked { addr = 9; id = 999 });
      (* A lookup started long after the revocation must never query the
         ejected identity. *)
      Trace.emit ~time:100.0 ~node:3 (Trace.Lookup_start { key = 1; anonymous = false });
      Trace.emit ~time:100.5 ~node:3
        (Trace.Lookup_hop { key = 1; peer_addr = 9; peer_id = 999; hop = 0 });
      Alcotest.(check int) "one violation" 1 (List.length (Octopus.Invariant.violations chk)))

let test_revoked_within_grace_excused () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:9 (Trace.Revoked { addr = 9; id = 999 });
      (* This lookup began before the CRL could have mattered. *)
      Trace.emit ~time:1.0 ~node:3 (Trace.Lookup_start { key = 1; anonymous = false });
      Trace.emit ~time:1.5 ~node:3
        (Trace.Lookup_hop { key = 1; peer_addr = 9; peer_id = 999; hop = 0 });
      Alcotest.(check bool) "excused" true (Octopus.Invariant.ok chk))

let test_byte_budget_flagged () =
  synthetic (fun _w chk ->
      Trace.emit ~time:0.0 ~node:1 (Trace.Msg { kind = "Ping_req"; dst = 2; size = 40 });
      Trace.emit ~time:0.0 ~node:1 (Trace.Msg { kind = "Fwd"; dst = 2; size = 12 });
      Alcotest.(check int) "oversized ping + sub-header fwd" 2
        (List.length (Octopus.Invariant.violations chk)))

let test_accounting_mismatch_flagged () =
  synthetic (fun _w chk ->
      (* A Net_send event with no matching Net counter increment means the
         stream and the network disagree. *)
      Trace.emit ~time:0.0 ~node:0 (Trace.Net_send { src = 0; dst = 1; size = 10 });
      Octopus.Invariant.finish chk;
      Alcotest.(check bool) "mismatch flagged" false (Octopus.Invariant.ok chk))

(* ------------------------------------------------------------------ *)
(* End-to-end checked scenarios *)

let scenario ?(revoke_one = false) ?(seed = 7) () =
  Octo_experiments.Tracecheck.run ~n:40 ~duration:40.0 ~seed ~revoke_one ()

let test_scenario_no_violations () =
  let r = scenario () in
  let chk = r.Octo_experiments.Tracecheck.checker in
  if not (Octopus.Invariant.ok chk) then
    Octopus.Invariant.report chk Format.str_formatter;
  Alcotest.(check string) "no violations" "" (Format.flush_str_formatter ());
  Alcotest.(check bool) "lookups ran" true (r.Octo_experiments.Tracecheck.lookups_done > 0);
  Alcotest.(check bool) "events checked" true (Octopus.Invariant.checked chk > 1000)

let test_scenario_with_revocation () =
  let r = scenario ~revoke_one:true () in
  let chk = r.Octo_experiments.Tracecheck.checker in
  let revocations =
    List.filter
      (fun (ev : Trace.event) ->
        match ev.Trace.data with Trace.Revoked _ -> true | _ -> false)
      (Trace.events r.Octo_experiments.Tracecheck.trace)
  in
  Alcotest.(check int) "one revocation traced" 1 (List.length revocations);
  if not (Octopus.Invariant.ok chk) then
    Octopus.Invariant.report chk Format.str_formatter;
  Alcotest.(check string) "revocation run clean" "" (Format.flush_str_formatter ())

let test_injected_misroute_caught () =
  Octopus.Olookup.set_test_misroute
    (Some (fun (p : Peer.t) -> { p with Peer.id = p.Peer.id + 1 }));
  let r = Fun.protect ~finally:(fun () -> Octopus.Olookup.set_test_misroute None) scenario in
  let chk = r.Octo_experiments.Tracecheck.checker in
  let vs = Octopus.Invariant.violations chk in
  Alcotest.(check bool) "violations reported" true (vs <> []);
  (* Every violation carries its offending Lookup_done event. *)
  List.iter
    (fun (v : Octopus.Invariant.violation) ->
      match v.Octopus.Invariant.event with
      | Some { Trace.data = Trace.Lookup_done _; _ } -> ()
      | Some ev -> Alcotest.failf "unexpected offender: %s" (Trace.to_json ev)
      | None -> Alcotest.fail "violation without offending event")
    vs

(* ------------------------------------------------------------------ *)
(* Cross-seed determinism *)

let rendered r =
  List.map Trace.to_json (Trace.events r.Octo_experiments.Tracecheck.trace)

let test_same_seed_same_trace () =
  let a = rendered (scenario ~seed:5 ()) in
  let b = rendered (scenario ~seed:5 ()) in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2 (fun x y -> if x <> y then Alcotest.failf "diverged: %s vs %s" x y) a b

let test_different_seed_diverges () =
  let a = rendered (scenario ~seed:5 ()) in
  let b = rendered (scenario ~seed:6 ()) in
  Alcotest.(check bool) "different streams" true (a <> b)

(* Lazy routing-table materialization is a pure memory optimization: a
   thunked table replays exactly what the eager bootstrap would have
   built, draws no randomness, and emits no trace events — so the same
   seed must produce a byte-identical event stream either way. *)
let eager_lazy_rendered ~eager () =
  with_trace ~capacity:(1 lsl 18) (fun t ->
      let cfg = { Octopus.Config.default with Octopus.Config.eager_tables = eager } in
      let spec = Octo_experiments.Scenario.make ~seed:5 ~cfg ~n:64 ~duration:90.0 () in
      ignore (Octo_experiments.Scenario.run spec);
      List.map Trace.to_json (Trace.events t))

let test_eager_lazy_tables_identical () =
  let lazy_run = eager_lazy_rendered ~eager:false () in
  let eager_run = eager_lazy_rendered ~eager:true () in
  Alcotest.(check int) "same length" (List.length lazy_run) (List.length eager_run);
  List.iter2
    (fun x y -> if x <> y then Alcotest.failf "diverged: %s vs %s" x y)
    lazy_run eager_run

(* Retry/backoff scheduling must be part of the deterministic record:
   identical seeds reproduce the jittered retry timeline byte-for-byte,
   and a different jitter stream diverges. *)
let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let rpc_retry_trace ~seed ~rng_seed () =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let e = Engine.create ~seed () in
      let rpc = Octo_sim.Rpc.create e ~rng:(Rng.create ~seed:rng_seed) () in
      let policy =
        Octo_sim.Rpc.policy ~attempts:4 ~backoff:0.3 ~jitter:0.5 ~timeout:1.0 ()
      in
      for i = 0 to 5 do
        ignore
          (Octo_sim.Rpc.call rpc ~src:i ~dst:(100 + i) ~policy
             ~send:(fun _ -> ())
             ~on_give_up:(fun () -> ())
             (fun (_ : unit) -> ()))
      done;
      Engine.run e ~until:60.0;
      List.map Trace.to_json (Trace.events t))

let test_retry_schedule_deterministic () =
  let a = rpc_retry_trace ~seed:3 ~rng_seed:9 () in
  let b = rpc_retry_trace ~seed:3 ~rng_seed:9 () in
  Alcotest.(check (list string)) "identical retry traces" a b;
  Alcotest.(check bool) "retries recorded" true
    (List.exists (fun s -> contains s "rpc_retry") a);
  Alcotest.(check bool) "give-ups recorded" true
    (List.exists (fun s -> contains s "rpc_giveup") a);
  let c = rpc_retry_trace ~seed:3 ~rng_seed:10 () in
  Alcotest.(check bool) "different jitter stream diverges" true (a <> c)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "octo_trace"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
          Alcotest.test_case "install/uninstall" `Quick test_install_uninstall;
          Alcotest.test_case "ring retention" `Quick test_ring_retention;
          Alcotest.test_case "subscribe" `Quick test_subscribe;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "engine sched event" `Quick test_engine_emits_sched;
          Alcotest.test_case "net events" `Quick test_net_emits_send_deliver_drop;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "clean stream" `Quick test_clean_synthetic_stream;
          Alcotest.test_case "duplicate relay" `Quick test_duplicate_relay_flagged;
          Alcotest.test_case "initiator relay" `Quick test_initiator_relay_flagged;
          Alcotest.test_case "revoked routing item" `Quick test_revoked_routing_item_flagged;
          Alcotest.test_case "revoked within grace" `Quick test_revoked_within_grace_excused;
          Alcotest.test_case "byte budget" `Quick test_byte_budget_flagged;
          Alcotest.test_case "accounting mismatch" `Quick test_accounting_mismatch_flagged;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "no violations" `Quick test_scenario_no_violations;
          Alcotest.test_case "revocation run" `Quick test_scenario_with_revocation;
          Alcotest.test_case "misroute caught" `Quick test_injected_misroute_caught;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same trace" `Quick test_same_seed_same_trace;
          Alcotest.test_case "different seed diverges" `Quick test_different_seed_diverges;
          Alcotest.test_case "eager vs lazy tables identical" `Quick
            test_eager_lazy_tables_identical;
          Alcotest.test_case "retry schedule deterministic" `Quick
            test_retry_schedule_deterministic;
        ] );
    ]
