val shared_total : int ref
val bump : int -> unit
