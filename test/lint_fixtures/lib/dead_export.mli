val used_fn : int -> int
val dead_fn : int -> int
