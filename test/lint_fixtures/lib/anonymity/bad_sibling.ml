(* L1 fixture: equal-rank siblings must not reference each other. *)

let borrow () = Octo_baselines.Chord_walk.estimate 3
