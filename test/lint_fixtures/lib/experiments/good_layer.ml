(* L1 negative fixture: experiments may reach down the whole stack. *)

let down seed = Octo_sim.Rng.create ~seed
let proto w = Octopus.Deployment.n_nodes w
