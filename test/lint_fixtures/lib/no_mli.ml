(* D6 fixture: a lib/ module with no sibling interface file. *)
let exposed_everything = 42
