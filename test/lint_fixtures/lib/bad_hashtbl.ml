(* D3 fixtures: unordered Hashtbl traversal in lib/. *)

let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
let dump tbl f = Hashtbl.iter f tbl

(* membership and point lookups are fine *)
let lookup tbl k = Hashtbl.find_opt tbl k

(* the sanctioned-wrapper idiom: standalone comment covers the next line *)
let sanctioned tbl f =
  (* octolint: allow ordered-iteration — wrapper under test *)
  Hashtbl.iter f tbl
