(* X1 fixture companion: marks Dead_export.used_fn as referenced. *)

let call x = Dead_export.used_fn x
