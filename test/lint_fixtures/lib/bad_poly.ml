(* D1 fixtures: polymorphic comparisons in lib/. Never compiled —
   [data_only_dirs] keeps dune away; octolint parses it directly. *)

(* bare [compare] escaping as a sort comparator *)
let sort_ids l = List.sort compare l

(* min/max on non-literal operands *)
let clamp a b = min a b
let widest a b = max a b

(* structural equality on inline composites *)
let pair_flip_eq a b = (a, b) = (b, a)
let both_some x y = Some x = Some y

(* exempt forms: literals and simple operands stay quiet *)
let is_origin x = x = 0
let before x y = x < y
let at_least_one x = min x 1

(* suppressed twins of each flagged form *)
let clamp_ok a b =
  (* octolint: allow no-poly-compare *)
  min a b

let sort_ok l = List.sort compare l (* octolint: allow no-poly-compare *)

(* one comment can name several rules *)
let multi tbl =
  (* octolint: allow no-poly-compare ordered-iteration *)
  Hashtbl.fold (fun k _ acc -> min k acc) tbl max_int
