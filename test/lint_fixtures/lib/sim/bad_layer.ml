(* L1 fixture: the substrate reaching up into protocol and experiments. *)

let send_up w = Octopus.Deployment.send w 0 1
let run_exp () = Octo_experiments.Workload.run ()
