(* D5 fixtures: stdout from lib/. *)

let shout msg = print_endline msg
let banner () = print_string "octopus"
let fmt_row x = Printf.printf "%d\n" x
let fmt_fmt x = Format.printf "%d@." x

(* building strings is fine; only writing stdout is banned *)
let row x = Printf.sprintf "%d" x

let debug_escape msg = print_endline msg (* octolint: allow no-stdout-in-lib *)
