(* X1 fixture: one export with a caller, one without. *)

let used_fn x = x + 1
let dead_fn x = x - 1
