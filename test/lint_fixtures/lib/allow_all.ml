(* octolint: allow all *)
let anything tbl = Hashtbl.iter (fun _ v -> print_endline v) tbl

let still_flagged () = Random.bits ()
