(* Present so rule D6 stays quiet for this fixture. *)
