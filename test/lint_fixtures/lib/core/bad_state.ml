(* D7 fixtures: per-node hot state as Hashtbl in the core/chord layers. *)

let fresh () = Hashtbl.create 16

let in_record () = { contents = Hashtbl.create 8 }

(* population-level tables carry a named suppression *)
let registry () =
  (* octolint: allow compact-node-state — one registry per deployment *)
  Hashtbl.create 64
