(* D4 fixtures: raw sends from a lib/core protocol module. *)

let raw net ~src ~dst msg = Net.send net ~src ~dst msg
let raw_chord net ~src ~dst msg = Network.send net ~src ~dst msg

(* receiving is not sending *)
let register net f = Net.register net f

let wrapper net ~src ~dst msg =
  (* octolint: allow no-raw-send *)
  Net.send net ~src ~dst msg
