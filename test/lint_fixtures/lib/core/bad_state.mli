(* Present so rule D6 stays quiet for this fixture. *)
val fresh : unit -> (int, int) Hashtbl.t
val in_record : unit -> (int, int) Hashtbl.t ref
val registry : unit -> (int, int) Hashtbl.t
