(* D8 fixtures: escaping vs module-private toplevel mutable state. *)

let shared_total : int ref = ref 0

let hits = Array.make 4 0
let bump i = hits.(i) <- hits.(i) + 1

let hidden_scratch : (int, int) Hashtbl.t = Hashtbl.create 8
let _warm () = Hashtbl.replace hidden_scratch 0 0
