(* S1 fixtures: a live allowance and a stale one. *)

(* octolint: allow no-wallclock-rng — live: it suppresses the line below *)
let jitter () = Random.int 3

(* octolint: allow ordered-iteration — stale: nothing here iterates *)
let quiet = 42
