(* D2 fixtures: wall-clock and ambient RNG — banned everywhere, not just
   lib/ (this file deliberately sits outside lib/ to prove it). *)

let jitter () = Random.float 1.0
let seed_me () = Random.self_init ()
let wall () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let qualified () = Stdlib.Random.bits ()

(* simulated time is the sanctioned clock *)
let sim_now engine = Engine.now engine

let escape () =
  (* octolint: allow no-wallclock-rng *)
  Random.bits ()

(* a suppression that names no known rule is itself reported *)
let broken () = ignore 0 (* octolint: allow determinsm *)
