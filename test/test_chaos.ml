(* End-to-end chaos tests: every fault regime must degrade gracefully
   (lookup success above its documented floor, ring re-converged after
   heal, zero invariant violations — including "corrupted documents are
   never accepted"), chaos runs must be same-seed deterministic, and a
   configuration without a fault plan must not engage the fault layer at
   all. *)

module Trace = Octo_sim.Trace
module Chaos_exp = Octo_experiments.Chaos_exp
module Scenario = Octo_experiments.Scenario

(* Small but not tiny: large enough for rings to survive a quarter of
   the nodes disappearing, small enough to keep the suite fast. *)
let n = 24
let duration = 80.0

let run regime = Chaos_exp.run ~n ~duration ~seed:7 ~regime ()

let check_regime regime ~expect_faults =
  let r = run regime in
  let name = Chaos_exp.regime_name regime in
  Alcotest.(check bool)
    (Printf.sprintf "%s: fault layer engaged" name)
    true (expect_faults r > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s: lookups ran" name)
    true (r.Chaos_exp.lookups_done > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s: success %.2f above floor %.2f" name (Chaos_exp.success_rate r)
       (Chaos_exp.threshold regime))
    true (Chaos_exp.passed r);
  (* [Chaos_exp.run] has already run the post-heal convergence check and
     the end-of-run reconciliation (byte accounting, corrupt-acceptance
     watch list) against the checker. *)
  (match Octopus.Invariant.violations r.Chaos_exp.checker with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violation(s), first: %s" name
      (List.length (Octopus.Invariant.violations r.Chaos_exp.checker))
      v.Octopus.Invariant.what);
  r

let test_partition () =
  ignore (check_regime Chaos_exp.Partition_heal ~expect_faults:(fun r -> r.Chaos_exp.drops))

let test_corruption () =
  let r = check_regime Chaos_exp.Corruption ~expect_faults:(fun r -> r.Chaos_exp.corruptions) in
  (* The invariant checker's clean bill above implies the watch list
     stayed empty: thousands of garbled documents crossed the wire and
     not one passed verification. Make the volume explicit. *)
  Alcotest.(check bool) "corruption actually exercised" true (r.Chaos_exp.corruptions > 50)

let test_dup_reorder () =
  let r =
    check_regime Chaos_exp.Dup_reorder ~expect_faults:(fun r ->
        r.Chaos_exp.duplicates + r.Chaos_exp.reorders)
  in
  Alcotest.(check bool) "duplicates seen" true (r.Chaos_exp.duplicates > 0);
  Alcotest.(check bool) "reorders seen" true (r.Chaos_exp.reorders > 0)

let test_crash_burst () =
  let r = check_regime Chaos_exp.Crash_burst ~expect_faults:(fun r -> r.Chaos_exp.crashes) in
  Alcotest.(check int) "an eighth of the ring crashed" (n / 8) r.Chaos_exp.crashes

let test_outage () =
  ignore (check_regime Chaos_exp.Regional_outage ~expect_faults:(fun r -> r.Chaos_exp.drops))

(* ------------------------------------------------------------------ *)
(* Determinism *)

let trace_lines r = List.map Trace.to_json (Trace.events r.Chaos_exp.trace)

let test_same_seed_byte_identical () =
  let a = trace_lines (run Chaos_exp.Partition_heal) in
  let b = trace_lines (run Chaos_exp.Partition_heal) in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  List.iter2 (fun x y -> Alcotest.(check string) "identical event" x y) a b

let test_seeds_differ () =
  let a = trace_lines (run Chaos_exp.Partition_heal) in
  let b =
    trace_lines (Chaos_exp.run ~n ~duration ~seed:11 ~regime:Chaos_exp.Partition_heal ())
  in
  Alcotest.(check bool) "different seeds diverge" true (a <> b)

(* ------------------------------------------------------------------ *)
(* No plan: the fault layer must stay out of the loop entirely *)

let test_no_plan_no_fault_layer () =
  let trace = Trace.create () in
  Trace.install trace;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let spec = Scenario.make ~seed:7 ~n:16 ~duration:30.0 () in
      let sc = Scenario.run spec in
      Alcotest.(check bool) "no fault engine installed" true (Scenario.fault sc = None);
      let faulty =
        List.exists
          (fun (ev : Trace.event) ->
            match ev.Trace.data with
            | Trace.Fault_phase _ | Trace.Fault_crash _ | Trace.Fault_recover _
            | Trace.Net_drop _ ->
              true
            | _ -> false)
          (Trace.events trace)
      in
      Alcotest.(check bool) "no fault events in trace" false faulty)

let test_regime_names_roundtrip () =
  List.iter
    (fun r ->
      match Chaos_exp.regime_of_name (Chaos_exp.regime_name r) with
      | Some r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | None -> Alcotest.failf "name %s does not parse back" (Chaos_exp.regime_name r))
    Chaos_exp.all_regimes;
  Alcotest.(check bool) "unknown name rejected" true (Chaos_exp.regime_of_name "nope" = None)

let () =
  Alcotest.run "chaos"
    [ ( "regimes",
        [ Alcotest.test_case "partition heals and converges" `Slow test_partition;
          Alcotest.test_case "corruption never accepted" `Slow test_corruption;
          Alcotest.test_case "duplication and reordering" `Slow test_dup_reorder;
          Alcotest.test_case "crash burst recovers" `Slow test_crash_burst;
          Alcotest.test_case "regional outage" `Slow test_outage;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed byte-identical" `Slow test_same_seed_byte_identical;
          Alcotest.test_case "seeds diverge" `Slow test_seeds_differ;
        ] );
      ( "plumbing",
        [ Alcotest.test_case "no plan, no fault layer" `Quick test_no_plan_no_fault_layer;
          Alcotest.test_case "regime names roundtrip" `Quick test_regime_names_roundtrip;
        ] );
    ]
